//! The codon substitution rate matrix of Eq. 1 and its symmetric forms.
//!
//! For codons `i ≠ j` (Eq. 1 of the paper):
//!
//! ```text
//! q_ij = 0                two or more nucleotide differences
//!        π_j              synonymous transversion
//!        κ π_j            synonymous transition
//!        ω π_j            non-synonymous transversion
//!        ω κ π_j          non-synonymous transition
//! ```
//!
//! The matrix factors as `Q = S Π` with `S` symmetric (`s_ij = q_ij / π_j`)
//! and `Π = diag(π)`. The paper's Eq. 2 then defines the symmetric
//! `A = Π^{1/2} S Π^{1/2}`, whose eigendecomposition yields `e^{Qt}`
//! (Eqs. 3–5); that step lives in the `slim-expm` crate.

use slim_bio::nucleotide::ChangeKind;
use slim_bio::GeneticCode;
#[cfg(test)]
use slim_bio::N_CODONS;
use slim_linalg::Mat;

/// How to normalize the rate matrix so branch lengths are measured in
/// expected substitutions per codon.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ScalePolicy {
    /// Scale each Q so its stationary flux is 1 (`-Σ πᵢ qᵢᵢ = 1`).
    #[default]
    PerClass,
    /// Divide by an externally supplied scale (used by the branch-site
    /// model to share one time scale across site classes, as CodeML does).
    External(f64),
    /// No scaling (raw Eq. 1 rates) — useful for tests.
    None,
}

/// A built codon rate matrix and the symmetric forms derived from it.
#[derive(Debug, Clone)]
pub struct RateMatrix {
    /// The (scaled) instantaneous rate matrix `Q`, rows summing to zero.
    pub q: Mat,
    /// Symmetric matrix `A = Π^{1/2} S Π^{1/2}` at the same scale as `q`.
    pub a: Mat,
    /// Equilibrium codon frequencies π (length 61).
    pub pi: Vec<f64>,
    /// `π_i^{+1/2}` (length 61), cached for the expm back-transform.
    pub sqrt_pi: Vec<f64>,
    /// `π_i^{-1/2}` (length 61).
    pub inv_sqrt_pi: Vec<f64>,
    /// The stationary flux `-Σ πᵢ qᵢᵢ` of the **unscaled** Eq. 1 matrix;
    /// callers implementing shared scaling divide by a mix of these.
    pub raw_rate: f64,
    /// The factor actually applied: `q = factor · q_raw`. Participates in
    /// eigendecomposition cache keys.
    pub applied_factor: f64,
}

/// Build the Eq. 1 rate matrix for one ω class.
///
/// # Panics
/// Panics if `pi` is not a valid length-61 distribution or if `kappa`/
/// `omega` are not finite and positive (ω may be 0 for a fully conserved
/// class; CodeML bounds it away from 0 during optimization, but the matrix
/// itself is well-defined).
pub fn build_rate_matrix(
    code: &GeneticCode,
    kappa: f64,
    omega: f64,
    pi: &[f64],
    scale: ScalePolicy,
) -> RateMatrix {
    assert_eq!(
        pi.len(),
        code.n_sense(),
        "pi must have one entry per sense codon"
    );
    assert!(kappa.is_finite() && kappa > 0.0, "kappa must be positive");
    assert!(
        omega.is_finite() && omega >= 0.0,
        "omega must be non-negative"
    );
    debug_assert!(
        (pi.iter().sum::<f64>() - 1.0).abs() < 1e-9,
        "pi must sum to 1"
    );

    let n = code.n_sense();
    let mut q = Mat::zeros(n, n);

    // Off-diagonal rates per Eq. 1.
    for i in 0..n {
        let ci = code.sense_codon(i);
        for j in 0..n {
            if i == j {
                continue;
            }
            let cj = code.sense_codon(j);
            let Some(change) = ci.single_change(cj) else {
                continue;
            };
            let mut rate = pi[j];
            if change.kind == ChangeKind::Transition {
                rate *= kappa;
            }
            if !code.is_synonymous(ci, cj) {
                rate *= omega;
            }
            q[(i, j)] = rate;
            let _ = change;
        }
    }

    // Diagonal: rows sum to zero.
    for i in 0..n {
        let row_sum: f64 = q.row(i).iter().sum::<f64>() - q[(i, i)];
        q[(i, i)] = -row_sum;
    }

    // Stationary flux of the raw matrix.
    let raw_rate: f64 = (0..n).map(|i| -pi[i] * q[(i, i)]).sum();

    let factor = match scale {
        ScalePolicy::PerClass => {
            if raw_rate > 0.0 {
                1.0 / raw_rate
            } else {
                1.0 // omega = 0 with degenerate pi could zero the flux
            }
        }
        ScalePolicy::External(s) => {
            assert!(s > 0.0, "external scale must be positive");
            1.0 / s
        }
        ScalePolicy::None => 1.0,
    };
    if factor != 1.0 {
        q.scale(factor);
    }

    // Symmetric form A = Π^{1/2} S Π^{1/2} where S = Q Π^{-1}:
    // a_ij = sqrt(π_i) q_ij / sqrt(π_j).
    let sqrt_pi: Vec<f64> = pi.iter().map(|&p| p.sqrt()).collect();
    let inv_sqrt_pi: Vec<f64> = sqrt_pi.iter().map(|&s| 1.0 / s).collect();
    let mut a = q.mul_diag_left(&sqrt_pi).mul_diag_right(&inv_sqrt_pi);
    // Symmetric by detailed balance (π_i q_ij = π_j q_ji); average away
    // rounding noise so downstream eigensolvers see an exactly symmetric
    // matrix.
    a.symmetrize();

    #[cfg(feature = "sanitize")]
    {
        slim_linalg::sanitize::check_finite_nonneg("pi", pi, || {
            format!("build_rate_matrix(kappa={kappa}, omega={omega})")
        });
        slim_linalg::sanitize::check_generator_rows(&q, 1e-9, || {
            format!("build_rate_matrix(kappa={kappa}, omega={omega}, applied_factor={factor})")
        });
    }

    RateMatrix {
        q,
        a,
        pi: pi.to_vec(),
        sqrt_pi,
        inv_sqrt_pi,
        raw_rate,
        applied_factor: factor,
    }
}

/// Decompose the stationary flux of the Eq. 1 matrix into its synonymous
/// and non-synonymous parts: `μ(ω) = syn + ω · nonsyn`.
///
/// The flux is linear in ω because ω multiplies exactly the
/// non-synonymous rates; this lets callers compute the **shared**
/// branch-site scale (the mixture-averaged background rate CodeML uses)
/// without building any extra matrices.
pub fn rate_components(code: &GeneticCode, kappa: f64, pi: &[f64]) -> (f64, f64) {
    assert_eq!(pi.len(), code.n_sense());
    let n = code.n_sense();
    let mut syn = 0.0f64;
    let mut nonsyn = 0.0f64;
    for i in 0..n {
        let ci = code.sense_codon(i);
        for j in 0..n {
            if i == j {
                continue;
            }
            let cj = code.sense_codon(j);
            let Some(change) = ci.single_change(cj) else {
                continue;
            };
            let mut rate = pi[i] * pi[j];
            if change.kind == ChangeKind::Transition {
                rate *= kappa;
            }
            if code.is_synonymous(ci, cj) {
                syn += rate;
            } else {
                nonsyn += rate;
            }
        }
    }
    (syn, nonsyn)
}

impl RateMatrix {
    /// Matrix order (number of sense codons).
    pub fn order(&self) -> usize {
        self.pi.len()
    }

    /// The stationary substitution rate `-Σ πᵢ qᵢᵢ` of the **scaled**
    /// matrix (1.0 under [`ScalePolicy::PerClass`]).
    pub fn stationary_rate(&self) -> f64 {
        (0..self.order())
            .map(|i| -self.pi[i] * self.q[(i, i)])
            .sum()
    }

    /// Verify detailed balance `πᵢ qᵢⱼ = πⱼ qⱼᵢ` within `tol`
    /// (diagnostic/test helper — time-reversibility is what makes the
    /// symmetric expm trick valid).
    pub fn max_detailed_balance_violation(&self) -> f64 {
        let mut worst = 0.0f64;
        let n = self.order();
        for i in 0..n {
            for j in (i + 1)..n {
                let v = (self.pi[i] * self.q[(i, j)] - self.pi[j] * self.q[(j, i)]).abs();
                worst = worst.max(v);
            }
        }
        worst
    }
}

/// Build a Muse–Gaut (MG94-style) rate matrix: the rate of a single
/// nucleotide change is proportional to the **target nucleotide**'s
/// frequency at the changing codon position (times the usual κ/ω
/// factors), rather than the whole target-codon frequency as in the
/// GY94-style Eq. 1 matrix.
///
/// The stationary distribution of this chain is the product measure of
/// the positional nucleotide frequencies restricted to sense codons
/// (returned in [`RateMatrix::pi`]); the chain is reversible with respect
/// to it, so the same symmetric-eigendecomposition expm pipeline applies
/// unchanged. CodeML offers both parameterizations; this reproduction's
/// likelihood engines use GY94 (the paper's setting), with MG94 provided
/// as substrate for the §V-B "further models".
///
/// # Panics
/// Panics if `pos_freqs` rows are not distributions or κ/ω are invalid.
pub fn build_rate_matrix_mg94(
    code: &GeneticCode,
    kappa: f64,
    omega: f64,
    pos_freqs: &[[f64; 4]; 3],
    scale: ScalePolicy,
) -> RateMatrix {
    assert!(kappa.is_finite() && kappa > 0.0);
    assert!(omega.is_finite() && omega >= 0.0);
    for row in pos_freqs {
        let s: f64 = row.iter().sum();
        assert!(
            (s - 1.0).abs() < 1e-9,
            "positional frequencies must sum to 1"
        );
        assert!(row.iter().all(|&f| f > 0.0));
    }

    let n = code.n_sense();
    // Stationary distribution: product of positional frequencies over
    // sense codons, renormalized.
    let mut pi = vec![0.0f64; n];
    for (i, codon) in code.sense_codons().enumerate() {
        pi[i] = (0..3).map(|p| pos_freqs[p][codon.at(p).index()]).product();
    }
    let total: f64 = pi.iter().sum();
    for v in &mut pi {
        *v /= total;
    }

    let mut q = Mat::zeros(n, n);
    for i in 0..n {
        let ci = code.sense_codon(i);
        for j in 0..n {
            if i == j {
                continue;
            }
            let cj = code.sense_codon(j);
            let Some(change) = ci.single_change(cj) else {
                continue;
            };
            let mut rate = pos_freqs[change.position][change.to.index()];
            if change.kind == ChangeKind::Transition {
                rate *= kappa;
            }
            if !code.is_synonymous(ci, cj) {
                rate *= omega;
            }
            q[(i, j)] = rate;
        }
    }
    for i in 0..n {
        let row_sum: f64 = q.row(i).iter().sum::<f64>() - q[(i, i)];
        q[(i, i)] = -row_sum;
    }
    let raw_rate: f64 = (0..n).map(|i| -pi[i] * q[(i, i)]).sum();
    let factor = match scale {
        ScalePolicy::PerClass => {
            if raw_rate > 0.0 {
                1.0 / raw_rate
            } else {
                1.0
            }
        }
        ScalePolicy::External(s) => {
            assert!(s > 0.0);
            1.0 / s
        }
        ScalePolicy::None => 1.0,
    };
    if factor != 1.0 {
        q.scale(factor);
    }

    let sqrt_pi: Vec<f64> = pi.iter().map(|&p| p.sqrt()).collect();
    let inv_sqrt_pi: Vec<f64> = sqrt_pi.iter().map(|&s| 1.0 / s).collect();
    let mut a = q.mul_diag_left(&sqrt_pi).mul_diag_right(&inv_sqrt_pi);
    a.symmetrize();

    #[cfg(feature = "sanitize")]
    slim_linalg::sanitize::check_generator_rows(&q, 1e-9, || {
        format!("build_rate_matrix_mg94(kappa={kappa}, omega={omega}, applied_factor={factor})")
    });

    RateMatrix {
        q,
        a,
        pi,
        sqrt_pi,
        inv_sqrt_pi,
        raw_rate,
        applied_factor: factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_bio::Codon;

    fn uniform_pi() -> Vec<f64> {
        vec![1.0 / N_CODONS as f64; N_CODONS]
    }

    fn nonuniform_pi() -> Vec<f64> {
        // Deterministic non-uniform distribution.
        let mut pi: Vec<f64> = (0..N_CODONS).map(|i| 1.0 + ((i * 7) % 13) as f64).collect();
        let s: f64 = pi.iter().sum();
        for p in &mut pi {
            *p /= s;
        }
        pi
    }

    #[test]
    fn rows_sum_to_zero() {
        let code = GeneticCode::universal();
        let rm = build_rate_matrix(&code, 2.5, 0.4, &nonuniform_pi(), ScalePolicy::PerClass);
        for i in 0..N_CODONS {
            let s: f64 = rm.q.row(i).iter().sum();
            assert!(s.abs() < 1e-12, "row {i} sums to {s}");
        }
    }

    #[test]
    fn per_class_scaling_gives_unit_rate() {
        let code = GeneticCode::universal();
        let rm = build_rate_matrix(&code, 2.0, 1.5, &nonuniform_pi(), ScalePolicy::PerClass);
        assert!((rm.stationary_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn external_scaling_divides() {
        let code = GeneticCode::universal();
        let raw = build_rate_matrix(&code, 2.0, 0.5, &uniform_pi(), ScalePolicy::None);
        let scaled = build_rate_matrix(&code, 2.0, 0.5, &uniform_pi(), ScalePolicy::External(2.0));
        assert!((raw.q[(0, 1)] / 2.0 - scaled.q[(0, 1)]).abs() < 1e-15);
    }

    #[test]
    fn detailed_balance_holds() {
        let code = GeneticCode::universal();
        let rm = build_rate_matrix(&code, 3.0, 0.2, &nonuniform_pi(), ScalePolicy::PerClass);
        assert!(rm.max_detailed_balance_violation() < 1e-15);
    }

    #[test]
    fn a_is_symmetric_similarity_of_q() {
        let code = GeneticCode::universal();
        let rm = build_rate_matrix(&code, 2.0, 0.7, &nonuniform_pi(), ScalePolicy::PerClass);
        assert!(rm.a.asymmetry() < 1e-15);
        // A = Π^{1/2} Q Π^{-1/2}: check a few entries directly.
        for (i, j) in [(0usize, 1usize), (5, 20), (33, 60)] {
            let expect = rm.sqrt_pi[i] * rm.q[(i, j)] * rm.inv_sqrt_pi[j];
            let got = rm.a[(i, j)];
            // a was symmetrized; compare against the average of both forms
            let expect_t = rm.sqrt_pi[j] * rm.q[(j, i)] * rm.inv_sqrt_pi[i];
            assert!((got - 0.5 * (expect + expect_t)).abs() < 1e-15);
        }
    }

    #[test]
    fn multi_nucleotide_changes_have_zero_rate() {
        let code = GeneticCode::universal();
        let rm = build_rate_matrix(&code, 2.0, 0.5, &uniform_pi(), ScalePolicy::None);
        let i = code.sense_index(Codon::from_str("TTT").unwrap()).unwrap();
        let j = code.sense_index(Codon::from_str("CCT").unwrap()).unwrap(); // 2 changes
        let k = code.sense_index(Codon::from_str("AAA").unwrap()).unwrap(); // 3 changes
        assert_eq!(rm.q[(i, j)], 0.0);
        assert_eq!(rm.q[(i, k)], 0.0);
    }

    #[test]
    fn kappa_multiplies_transitions_only() {
        let code = GeneticCode::universal();
        let pi = uniform_pi();
        let rm1 = build_rate_matrix(&code, 1.0, 1.0, &pi, ScalePolicy::None);
        let rm2 = build_rate_matrix(&code, 5.0, 1.0, &pi, ScalePolicy::None);
        // TTT→TTC is a transition (T→C): rate multiplies by κ.
        let i = code.sense_index(Codon::from_str("TTT").unwrap()).unwrap();
        let j = code.sense_index(Codon::from_str("TTC").unwrap()).unwrap();
        assert!((rm2.q[(i, j)] / rm1.q[(i, j)] - 5.0).abs() < 1e-12);
        // TTT→TTA is a transversion (T→A): rate unchanged.
        let k = code.sense_index(Codon::from_str("TTA").unwrap()).unwrap();
        assert!((rm2.q[(i, k)] - rm1.q[(i, k)]).abs() < 1e-15);
    }

    #[test]
    fn omega_multiplies_nonsynonymous_only() {
        let code = GeneticCode::universal();
        let pi = uniform_pi();
        let rm1 = build_rate_matrix(&code, 2.0, 1.0, &pi, ScalePolicy::None);
        let rm2 = build_rate_matrix(&code, 2.0, 3.0, &pi, ScalePolicy::None);
        // TTT(F)→TTC(F) synonymous: unchanged.
        let i = code.sense_index(Codon::from_str("TTT").unwrap()).unwrap();
        let j = code.sense_index(Codon::from_str("TTC").unwrap()).unwrap();
        assert!((rm2.q[(i, j)] - rm1.q[(i, j)]).abs() < 1e-15);
        // TTT(F)→TTA(L) non-synonymous: ×3.
        let k = code.sense_index(Codon::from_str("TTA").unwrap()).unwrap();
        assert!((rm2.q[(i, k)] / rm1.q[(i, k)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn omega_zero_freezes_nonsynonymous() {
        let code = GeneticCode::universal();
        let rm = build_rate_matrix(&code, 2.0, 0.0, &uniform_pi(), ScalePolicy::None);
        let i = code.sense_index(Codon::from_str("TTT").unwrap()).unwrap();
        let k = code.sense_index(Codon::from_str("TTA").unwrap()).unwrap();
        assert_eq!(rm.q[(i, k)], 0.0);
        // Synonymous rates survive.
        let j = code.sense_index(Codon::from_str("TTC").unwrap()).unwrap();
        assert!(rm.q[(i, j)] > 0.0);
    }

    #[test]
    fn rate_components_reconstruct_flux() {
        // μ(ω) from the components must equal the raw_rate of the built
        // matrix for several ω.
        let code = GeneticCode::universal();
        let pi = nonuniform_pi();
        let (syn, nonsyn) = rate_components(&code, 2.3, &pi);
        assert!(syn > 0.0 && nonsyn > 0.0);
        for omega in [0.0, 0.5, 1.0, 4.0] {
            let rm = build_rate_matrix(&code, 2.3, omega, &pi, ScalePolicy::None);
            let mu = syn + omega * nonsyn;
            assert!(
                (rm.raw_rate - mu).abs() < 1e-12,
                "omega={omega}: {} vs {mu}",
                rm.raw_rate
            );
        }
    }

    #[test]
    fn applied_factor_recorded() {
        let code = GeneticCode::universal();
        let pi = uniform_pi();
        let rm = build_rate_matrix(&code, 2.0, 0.5, &pi, ScalePolicy::None);
        assert_eq!(rm.applied_factor, 1.0);
        let rm2 = build_rate_matrix(&code, 2.0, 0.5, &pi, ScalePolicy::External(4.0));
        assert!((rm2.applied_factor - 0.25).abs() < 1e-15);
    }

    fn skewed_pos_freqs() -> [[f64; 4]; 3] {
        [
            [0.1, 0.2, 0.3, 0.4],
            [0.4, 0.3, 0.2, 0.1],
            [0.25, 0.25, 0.25, 0.25],
        ]
    }

    #[test]
    fn mg94_rows_sum_to_zero_and_reversible() {
        let code = GeneticCode::universal();
        let rm =
            build_rate_matrix_mg94(&code, 2.5, 0.4, &skewed_pos_freqs(), ScalePolicy::PerClass);
        for i in 0..N_CODONS {
            let s: f64 = rm.q.row(i).iter().sum();
            assert!(s.abs() < 1e-12, "row {i}");
        }
        assert!(rm.max_detailed_balance_violation() < 1e-15);
        assert!((rm.stationary_rate() - 1.0).abs() < 1e-12);
        assert!(rm.a.asymmetry() < 1e-15);
    }

    #[test]
    fn mg94_rate_uses_target_nucleotide_frequency() {
        let code = GeneticCode::universal();
        let rm = build_rate_matrix_mg94(&code, 1.0, 1.0, &skewed_pos_freqs(), ScalePolicy::None);
        // TTT → GTT (position 0, target G with f = 0.4, transversion) vs
        // TTT → CTT (position 0, target C with f = 0.2, transition... no:
        // T→C is a transition; use T→A (f=0.3, transversion) instead).
        let i = code.sense_index(Codon::from_str("TTT").unwrap()).unwrap();
        let j_g = code.sense_index(Codon::from_str("GTT").unwrap()).unwrap();
        let j_a = code.sense_index(Codon::from_str("ATT").unwrap()).unwrap();
        // Both transversions at position 0: ratio of rates = ratio of
        // target nucleotide frequencies (0.4 / 0.3).
        let ratio = rm.q[(i, j_g)] / rm.q[(i, j_a)];
        assert!((ratio - 0.4 / 0.3).abs() < 1e-12, "{ratio}");
    }

    #[test]
    fn mg94_uniform_freqs_matches_gy94_uniform() {
        // With uniform positional frequencies, MG94 rates are proportional
        // to GY94 rates under uniform codon frequencies — the chains are
        // identical after normalization.
        let code = GeneticCode::universal();
        let uniform_pos = [[0.25f64; 4]; 3];
        let mg = build_rate_matrix_mg94(&code, 2.0, 0.5, &uniform_pos, ScalePolicy::PerClass);
        let gy = build_rate_matrix(&code, 2.0, 0.5, &uniform_pi(), ScalePolicy::PerClass);
        // Stationary distributions differ (MG94's is uniform over the
        // product measure restricted to sense codons = uniform), so the
        // normalized generators must agree entry-wise.
        assert!(mg.q.approx_eq(&gy.q, 1e-12));
    }

    #[test]
    fn stationary_distribution_is_left_null_vector() {
        // πᵀ Q = 0 (π is stationary for the generator).
        let code = GeneticCode::universal();
        let pi = nonuniform_pi();
        let rm = build_rate_matrix(&code, 2.0, 0.8, &pi, ScalePolicy::PerClass);
        for j in 0..N_CODONS {
            let s: f64 = (0..N_CODONS).map(|i| pi[i] * rm.q[(i, j)]).sum();
            assert!(s.abs() < 1e-13, "column {j}: {s}");
        }
    }
}
