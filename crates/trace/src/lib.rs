//! # slim-trace
//!
//! Structured event tracing for the SlimCodeML reproduction — the
//! *when/in-what-order* companion to `slim-obs`'s *how-much*
//! aggregates. Instrumented layers emit hierarchical spans (optimizer
//! iterations carrying the convergence trace, likelihood phases,
//! per-worker pruning blocks, batch jobs) and instant events (expm
//! cache hits/misses/evictions, retries, quarantines) into per-thread
//! buffers that drain into one bounded global ring — the **flight
//! recorder**. The ring serves two consumers:
//!
//! * `--trace <path>` drains everything into a Chrome Trace Event
//!   Format JSON document that Perfetto / chrome://tracing load
//!   directly ([`chrome_trace_json`]), summarized offline by
//!   `slimcodeml trace-report` ([`report`]);
//! * on worker panic or job quarantine, the batch layer attaches the
//!   last N events ([`dump_lines`]) to the journal record, so failures
//!   arrive with their history.
//!
//! ## Design constraints (shared with `slim-obs`)
//!
//! * **Dependency-free.** Only `std`.
//! * **One relaxed load when disabled.** [`enabled`] is the only cost
//!   at a disabled instrumentation site; no clock is read, nothing
//!   allocates ([`Span`] is inert, [`instant`] returns immediately).
//! * **Never perturbs numerics.** Tracing observes strictly outside
//!   the arithmetic; `tests/trace_identity.rs` pins lnL bits identical
//!   trace-on vs trace-off. Wall-clock timestamps exist only in trace
//!   output — the `det-wallclock` lint keeps clock reads out of the
//!   numeric crates.
//!
//! ## Enabling
//!
//! Off by default. Turns on when `SLIMCODEML_TRACE` is set to anything
//! but `0` / `false` / empty (read once, at first use), or when a
//! front end calls [`set_enabled`]`(true)` — the CLI does this for
//! `--trace`.

mod chrome;
mod event;
mod recorder;
pub mod report;

pub use chrome::chrome_trace_json;
pub use event::{Event, Phase, Value};
pub use recorder::{
    clear, dump_lines, flush_thread, last_events, set_capacity, stats, take_events, RecorderStats,
    DEFAULT_CAPACITY,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

/// Fold the `SLIMCODEML_TRACE` environment variable into the flag,
/// exactly once per process; later [`set_enabled`] calls override it.
fn sync_env() {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("SLIMCODEML_TRACE") {
            let v = v.trim();
            if !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false") {
                ENABLED.store(true, Ordering::Relaxed);
            }
        }
    });
}

/// Is tracing on? One relaxed load — the gate every instrumentation
/// site takes first.
#[inline]
pub fn enabled() -> bool {
    sync_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on or off for the whole process (the library-API
/// mirror of the CLI's `--trace` flag and the `SLIMCODEML_TRACE`
/// environment variable).
pub fn set_enabled(on: bool) {
    sync_env();
    ENABLED.store(on, Ordering::Relaxed);
}

/// An RAII span: emits a begin event at creation and an end event —
/// carrying every attribute attached in between — when dropped. When
/// tracing is disabled at creation the span is inert: no clock read,
/// no allocation, and the attribute methods are no-ops.
#[derive(Debug)]
#[must_use = "a span traces until it is dropped"]
pub struct Span {
    live: bool,
    name: &'static str,
    cat: &'static str,
    args: Vec<(&'static str, Value)>,
}

/// Open a span. The matching end event is emitted when the returned
/// guard drops, with any attributes attached via the `arg_*` methods.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> Span {
    let live = enabled();
    if live {
        recorder::record(Phase::Begin, name, cat, Vec::new());
    }
    Span {
        live,
        name,
        cat,
        args: Vec::new(),
    }
}

impl Span {
    /// Attach an unsigned-integer attribute to the end event.
    #[inline]
    pub fn arg_u64(&mut self, key: &'static str, value: u64) {
        if self.live {
            self.args.push((key, Value::U64(value)));
        }
    }

    /// Attach a floating-point attribute to the end event.
    #[inline]
    pub fn arg_f64(&mut self, key: &'static str, value: f64) {
        if self.live {
            self.args.push((key, Value::F64(value)));
        }
    }

    /// Attach a string attribute to the end event.
    #[inline]
    pub fn arg_str(&mut self, key: &'static str, value: &str) {
        if self.live {
            self.args.push((key, Value::Str(value.to_string())));
        }
    }

    /// Whether this span is recording (tracing was enabled when it
    /// opened). Lets call sites skip building expensive attributes.
    #[inline]
    pub fn is_live(&self) -> bool {
        self.live
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.live {
            recorder::record(
                Phase::End,
                self.name,
                self.cat,
                std::mem::take(&mut self.args),
            );
        }
    }
}

/// Emit an instant event with no attributes. One relaxed load when
/// tracing is disabled.
#[inline]
pub fn instant(name: &'static str, cat: &'static str) {
    if enabled() {
        recorder::record(Phase::Instant, name, cat, Vec::new());
    }
}

/// Emit an instant event with attributes built lazily: the closure
/// runs only when tracing is enabled, so a disabled site pays exactly
/// the [`enabled`] load.
#[inline]
pub fn instant_with<F>(name: &'static str, cat: &'static str, args: F)
where
    F: FnOnce() -> Vec<(&'static str, Value)>,
{
    if enabled() {
        recorder::record(Phase::Instant, name, cat, args());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Tests toggle the process-global flag and drain the global ring;
    // serialize them.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_span_records_nothing() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        clear();
        {
            let mut s = span("quiet", "test");
            s.arg_u64("k", 1);
            instant("tick", "test");
            instant_with("tock", "test", || vec![("v", Value::F64(1.0))]);
            assert!(!s.is_live());
        }
        let (events, dropped) = take_events();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn span_begin_end_pair_with_args_on_end() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear();
        {
            let mut s = span("work", "test");
            s.arg_f64("lnl", -1.5);
            instant("mid", "test");
        }
        set_enabled(false);
        let (events, _) = take_events();
        let phases: Vec<(Phase, &str)> = events.iter().map(|e| (e.phase, e.name)).collect();
        assert_eq!(
            phases,
            vec![
                (Phase::Begin, "work"),
                (Phase::Instant, "mid"),
                (Phase::End, "work")
            ]
        );
        assert!(events[0].args.is_empty());
        assert_eq!(events[2].args, vec![("lnl", Value::F64(-1.5))]);
        assert!(events[0].ts_us <= events[2].ts_us);
        assert!(events[0].seq < events[1].seq && events[1].seq < events[2].seq);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear();
        set_capacity(4);
        for _ in 0..6 {
            instant("tick", "test");
        }
        flush_thread();
        let st = stats();
        assert_eq!(st.len, 4);
        assert_eq!(st.dropped, 2);
        let last = last_events(2);
        assert_eq!(last.len(), 2);
        set_enabled(false);
        set_capacity(DEFAULT_CAPACITY);
        clear();
    }

    #[test]
    fn dump_lines_render_latest_events() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear();
        instant_with("boom", "test", || vec![("attempt", Value::U64(2))]);
        set_enabled(false);
        let lines = dump_lines(8);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("i boom attempt=2"), "line: {}", lines[0]);
        clear();
    }

    #[test]
    fn spans_survive_cross_thread_flush() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    {
                        let _sp = span("worker", "test");
                    }
                    // Scoped threads flush explicitly: the scope
                    // unblocks before TLS destructors run.
                    flush_thread();
                });
            }
        });
        set_enabled(false);
        let (events, _) = take_events();
        // Each worker thread flushed on exit: two begin/end pairs.
        assert_eq!(events.len(), 4);
        let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2, "each thread gets its own tid");
    }
}
