//! `trace-report` summarization: turn an event stream back into the
//! two things a human asks a trace first — how did each fit converge,
//! and where did the time go.
//!
//! The functions here work on [`RecordedEvent`], a parser-neutral
//! mirror of [`crate::Event`]: the CLI builds them from a Chrome Trace
//! Event Format file, tests build them straight from live events.

use crate::event::{Event, Value};
use std::collections::BTreeMap;

/// One event as read back from a trace file. `ph` is the Chrome phase
/// letter; only numeric and string args survive the round trip (that
/// is all the instrumentation emits).
#[derive(Debug, Clone)]
pub struct RecordedEvent {
    /// Event name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Chrome phase letter (`B`, `E`, `i`, `M`, ...).
    pub ph: char,
    /// Timestamp in microseconds.
    pub ts_us: u64,
    /// Thread track id.
    pub tid: u64,
    /// Numeric attributes.
    pub num_args: Vec<(String, f64)>,
    /// String attributes.
    pub str_args: Vec<(String, String)>,
}

impl RecordedEvent {
    /// Mirror a live event (used by tests and by in-process reports).
    pub fn from_event(e: &Event) -> RecordedEvent {
        let mut num_args = Vec::new();
        let mut str_args = Vec::new();
        for (k, v) in &e.args {
            match v {
                Value::U64(n) => num_args.push((k.to_string(), *n as f64)),
                Value::F64(x) => num_args.push((k.to_string(), *x)),
                Value::Bool(b) => num_args.push((k.to_string(), f64::from(u8::from(*b)))),
                Value::Str(s) => str_args.push((k.to_string(), s.clone())),
            }
        }
        RecordedEvent {
            name: e.name.to_string(),
            cat: e.cat.to_string(),
            ph: e.phase.letter(),
            ts_us: e.ts_us,
            tid: e.tid,
            num_args,
            str_args,
        }
    }

    fn num(&self, key: &str) -> Option<f64> {
        self.num_args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
    }

    fn str_arg(&self, key: &str) -> Option<&str> {
        self.str_args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One optimizer iteration as recorded in the convergence trace.
#[derive(Debug, Clone)]
pub struct ConvergenceRow {
    /// 1-based fit ordinal (order of `opt.fit` spans in the trace).
    pub fit: usize,
    /// Optimizer label (`bfgs` / `lbfgs`) if recorded.
    pub algo: String,
    /// Iteration number within the fit.
    pub iter: u64,
    /// Log-likelihood after the iteration.
    pub lnl: f64,
    /// Infinity-norm of the gradient.
    pub grad_norm: f64,
    /// Accepted line-search step size.
    pub step: f64,
    /// Function evaluations the line search spent this iteration.
    pub ls_evals: u64,
}

/// Extract the per-fit convergence table from `opt.iteration` span
/// ends, attributing each to the enclosing `opt.fit` span on the same
/// thread (fits are numbered in begin order across the whole trace).
pub fn convergence_rows(events: &[RecordedEvent]) -> Vec<ConvergenceRow> {
    let mut order: Vec<&RecordedEvent> = events.iter().collect();
    order.sort_by_key(|e| e.ts_us);

    let mut next_fit = 0usize;
    // Per-tid stack of (fit ordinal, algo) for nested safety.
    let mut open: BTreeMap<u64, Vec<(usize, String)>> = BTreeMap::new();
    let mut rows = Vec::new();
    for e in order {
        if e.name == "opt.fit" {
            match e.ph {
                'B' => {
                    next_fit += 1;
                    open.entry(e.tid)
                        .or_default()
                        .push((next_fit, String::new()));
                }
                'E' => {
                    // The algo arg rides on the end event; patch rows
                    // already attributed to this fit.
                    if let Some((fit, _)) = open.entry(e.tid).or_default().pop() {
                        if let Some(algo) = e.str_arg("algo") {
                            for r in rows
                                .iter_mut()
                                .filter(|r: &&mut ConvergenceRow| r.fit == fit)
                            {
                                r.algo = algo.to_string();
                            }
                        }
                    }
                }
                _ => {}
            }
        } else if e.name == "opt.iteration" && e.ph == 'E' {
            let (fit, algo) = open
                .get(&e.tid)
                .and_then(|s| s.last())
                .map(|(f, a)| (*f, a.clone()))
                .unwrap_or((0, String::new()));
            rows.push(ConvergenceRow {
                fit,
                algo,
                iter: e.num("iter").unwrap_or(0.0) as u64,
                lnl: e.num("lnl").unwrap_or(f64::NAN),
                grad_norm: e.num("grad_norm").unwrap_or(f64::NAN),
                step: e.num("step").unwrap_or(f64::NAN),
                ls_evals: e.num("ls_evals").unwrap_or(0.0) as u64,
            });
        }
    }
    rows
}

/// Aggregate wall time per span name.
#[derive(Debug, Clone)]
pub struct SpanAggregate {
    /// Category of the span.
    pub cat: String,
    /// Span name.
    pub name: String,
    /// Completed spans seen.
    pub count: u64,
    /// Total wall time across spans, microseconds.
    pub total_us: u64,
    /// Total time minus time spent in child spans on the same thread —
    /// the span's own contribution to the critical path.
    pub self_us: u64,
}

/// Match begin/end pairs per thread and aggregate total and self time
/// by span name, longest self-time first. Unmatched begins (span still
/// open when the ring was drained) are skipped.
pub fn span_aggregates(events: &[RecordedEvent]) -> Vec<SpanAggregate> {
    let mut order: Vec<&RecordedEvent> = events.iter().collect();
    order.sort_by_key(|e| e.ts_us);

    struct Open {
        name: String,
        cat: String,
        start_us: u64,
        child_us: u64,
    }
    let mut stacks: BTreeMap<u64, Vec<Open>> = BTreeMap::new();
    let mut agg: BTreeMap<(String, String), SpanAggregate> = BTreeMap::new();
    for e in order {
        match e.ph {
            'B' => stacks.entry(e.tid).or_default().push(Open {
                name: e.name.clone(),
                cat: e.cat.clone(),
                start_us: e.ts_us,
                child_us: 0,
            }),
            'E' => {
                let stack = stacks.entry(e.tid).or_default();
                // Pop until the matching name in case an unmatched
                // begin slipped past a ring truncation boundary.
                while let Some(open) = stack.pop() {
                    let matches = open.name == e.name;
                    if matches {
                        let dur = e.ts_us.saturating_sub(open.start_us);
                        if let Some(parent) = stack.last_mut() {
                            parent.child_us += dur;
                        }
                        let entry = agg
                            .entry((open.cat.clone(), open.name.clone()))
                            .or_insert_with(|| SpanAggregate {
                                cat: open.cat,
                                name: open.name,
                                count: 0,
                                total_us: 0,
                                self_us: 0,
                            });
                        entry.count += 1;
                        entry.total_us += dur;
                        entry.self_us += dur.saturating_sub(open.child_us);
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    let mut out: Vec<SpanAggregate> = agg.into_values().collect();
    out.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
    out
}

fn fmt_ms(us: u64) -> String {
    format!("{:.3}", us as f64 / 1e3)
}

/// Render the full `trace-report` text: the per-fit convergence table
/// followed by the critical-path (self-time) breakdown.
pub fn render_report(events: &[RecordedEvent]) -> String {
    let mut out = String::new();
    let rows = convergence_rows(events);
    out.push_str("Convergence trace\n");
    if rows.is_empty() {
        out.push_str("  (no opt.iteration spans in trace)\n");
    } else {
        out.push_str(&format!(
            "  {:>3} {:>6} {:>4}  {:>18} {:>12} {:>10} {:>8}\n",
            "fit", "algo", "iter", "lnL", "|grad|", "step", "ls_evals"
        ));
        for r in &rows {
            out.push_str(&format!(
                "  {:>3} {:>6} {:>4}  {:>18.8} {:>12.3e} {:>10.3e} {:>8}\n",
                r.fit,
                if r.algo.is_empty() { "?" } else { &r.algo },
                r.iter,
                r.lnl,
                r.grad_norm,
                r.step,
                r.ls_evals
            ));
        }
    }
    out.push('\n');
    out.push_str("Critical path (self time)\n");
    let aggs = span_aggregates(events);
    if aggs.is_empty() {
        out.push_str("  (no completed spans in trace)\n");
    } else {
        out.push_str(&format!(
            "  {:<28} {:>8} {:>14} {:>14}\n",
            "span", "count", "total_ms", "self_ms"
        ));
        for a in &aggs {
            out.push_str(&format!(
                "  {:<28} {:>8} {:>14} {:>14}\n",
                format!("{}/{}", a.cat, a.name),
                a.count,
                fmt_ms(a.total_us),
                fmt_ms(a.self_us)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, cat: &str, ph: char, ts_us: u64, tid: u64) -> RecordedEvent {
        RecordedEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph,
            ts_us,
            tid,
            num_args: vec![],
            str_args: vec![],
        }
    }

    #[test]
    fn aggregates_compute_self_time() {
        let events = vec![
            rec("outer", "t", 'B', 0, 0),
            rec("inner", "t", 'B', 10, 0),
            rec("inner", "t", 'E', 40, 0),
            rec("outer", "t", 'E', 100, 0),
        ];
        let aggs = span_aggregates(&events);
        let outer = aggs.iter().find(|a| a.name == "outer").unwrap();
        let inner = aggs.iter().find(|a| a.name == "inner").unwrap();
        assert_eq!(outer.total_us, 100);
        assert_eq!(outer.self_us, 70);
        assert_eq!(inner.total_us, 30);
        assert_eq!(inner.self_us, 30);
    }

    #[test]
    fn convergence_rows_attach_fit_and_algo() {
        let mut it = rec("opt.iteration", "opt", 'E', 20, 0);
        it.num_args = vec![
            ("iter".to_string(), 1.0),
            ("lnl".to_string(), -12.5),
            ("grad_norm".to_string(), 0.5),
            ("step".to_string(), 1.0),
            ("ls_evals".to_string(), 2.0),
        ];
        let mut fit_end = rec("opt.fit", "opt", 'E', 30, 0);
        fit_end.str_args = vec![("algo".to_string(), "bfgs".to_string())];
        let events = vec![
            rec("opt.fit", "opt", 'B', 0, 0),
            rec("opt.iteration", "opt", 'B', 10, 0),
            it,
            fit_end,
        ];
        let rows = convergence_rows(&events);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].fit, 1);
        assert_eq!(rows[0].algo, "bfgs");
        assert_eq!(rows[0].iter, 1);
        assert!((rows[0].lnl + 12.5).abs() < 1e-12);
    }

    #[test]
    fn report_renders_both_sections() {
        let events = vec![rec("x", "t", 'B', 0, 0), rec("x", "t", 'E', 5, 0)];
        let text = render_report(&events);
        assert!(text.contains("Convergence trace"));
        assert!(text.contains("Critical path"));
        assert!(text.contains("t/x"));
    }
}
