//! The flight recorder: per-thread event buffers draining into one
//! bounded global ring.
//!
//! Instrumented threads never contend on the hot path — each thread
//! appends to its own thread-local buffer (plain `Vec`, no locks, no
//! atomics beyond the sequence counter) and only takes the global
//! mutex when the buffer fills, when it is flushed explicitly, or when
//! the thread exits (the buffer's `Drop` flushes). The global ring
//! keeps the most recent `capacity` events and counts what it had to
//! drop, so exports can report truncation instead of hiding it.

use crate::event::{Event, Phase, Value};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default global ring capacity (events). A full H0+H1 fit on the
/// Table II analogs emits on the order of 10⁵ events with worker spans
/// on; the default keeps the whole run for export while bounding
/// memory (~100 B/event).
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// Thread-local buffer length that triggers a drain into the ring.
const FLUSH_THRESHOLD: usize = 128;

/// Global sequence counter: total order across threads.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Stable small thread ids, assigned on first event per thread.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// The trace epoch: all timestamps are microseconds since this.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// The global bounded ring.
struct Ring {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, e: Event) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }
}

static RING: OnceLock<Mutex<Ring>> = OnceLock::new();

fn ring() -> &'static Mutex<Ring> {
    RING.get_or_init(|| {
        Mutex::new(Ring {
            events: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        })
    })
}

/// Per-thread state: assigned tid plus the pending event buffer.
struct TlBuf {
    tid: u64,
    events: Vec<Event>,
}

impl TlBuf {
    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
        for e in self.events.drain(..) {
            ring.push(e);
        }
    }
}

impl Drop for TlBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLBUF: RefCell<TlBuf> = RefCell::new(TlBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Vec::with_capacity(FLUSH_THRESHOLD),
    });
}

/// Record one event from the current thread. Callers have already
/// checked [`crate::enabled`]; this reads the clock, stamps the
/// sequence number, and appends to the thread-local buffer.
pub(crate) fn record(
    phase: Phase,
    name: &'static str,
    cat: &'static str,
    args: Vec<(&'static str, Value)>,
) {
    let ts_us = u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    TLBUF.with(|b| {
        // `with` + `borrow_mut` cannot re-enter: record() is the only
        // borrower and never calls itself.
        let mut b = b.borrow_mut();
        let tid = b.tid;
        b.events.push(Event {
            seq,
            ts_us,
            tid,
            phase,
            name,
            cat,
            args,
        });
        if b.events.len() >= FLUSH_THRESHOLD {
            b.flush();
        }
    });
}

/// Flush the calling thread's pending events into the global ring.
/// Exporters call this on their own thread before draining; threads
/// also flush automatically when they terminate. **Scoped threads**
/// (`std::thread::scope`, crossbeam scopes) must call this at the end
/// of the spawned closure: the scope unblocks when the closure
/// returns, *before* thread-local destructors run, so an automatic
/// exit-flush can land after the parent has already drained the ring.
pub fn flush_thread() {
    TLBUF.with(|b| b.borrow_mut().flush());
}

/// Replace the ring capacity (most-recent `capacity` events are kept).
/// Also resets the drop counter.
pub fn set_capacity(capacity: usize) {
    let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    ring.capacity = capacity.max(1);
    while ring.events.len() > ring.capacity {
        ring.events.pop_front();
    }
    ring.dropped = 0;
}

/// Discard all recorded events (the calling thread's buffer included)
/// and reset the drop counter.
pub fn clear() {
    TLBUF.with(|b| b.borrow_mut().events.clear());
    let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    ring.events.clear();
    ring.dropped = 0;
}

/// Drain every recorded event, oldest first (flushes the calling
/// thread's buffer first). Returns the events and how many older
/// events the ring had to drop to stay within capacity.
pub fn take_events() -> (Vec<Event>, u64) {
    flush_thread();
    let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    let events = ring.events.drain(..).collect();
    let dropped = ring.dropped;
    ring.dropped = 0;
    (events, dropped)
}

/// The most recent `n` events, oldest first, without draining — the
/// flight-recorder view used when a failure needs its history attached.
pub fn last_events(n: usize) -> Vec<Event> {
    flush_thread();
    let ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    let skip = ring.events.len().saturating_sub(n);
    ring.events.iter().skip(skip).cloned().collect()
}

/// The most recent `n` events rendered as compact one-line strings,
/// ready to embed in a journal or quarantine record.
pub fn dump_lines(n: usize) -> Vec<String> {
    last_events(n).iter().map(Event::to_line).collect()
}

/// Recorder occupancy counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderStats {
    /// Events currently retained in the global ring.
    pub len: usize,
    /// Ring capacity.
    pub capacity: usize,
    /// Events dropped (oldest-first) since the last clear/drain.
    pub dropped: u64,
}

/// Current recorder occupancy (does not flush thread buffers).
pub fn stats() -> RecorderStats {
    let ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    RecorderStats {
        len: ring.events.len(),
        capacity: ring.capacity,
        dropped: ring.dropped,
    }
}
