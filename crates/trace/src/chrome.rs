//! Chrome Trace Event Format export.
//!
//! Emits the JSON Object Format — `{"traceEvents": [...], ...}` — that
//! Perfetto and chrome://tracing both ingest. Every event becomes one
//! object with the standard `name`/`cat`/`ph`/`ts`/`pid`/`tid` fields
//! (`ts` in microseconds, per the spec) plus an `args` object carrying
//! the key=value attributes. Events are sorted by timestamp with the
//! global sequence number as tie-break, so per-thread begin/end pairs
//! arrive in nesting order.

use crate::event::{escape_json, Event};

/// The constant pid we emit: traces describe one process, and a fixed
/// id keeps the output reproducible run-to-run.
const PID: u64 = 1;

/// Serialize events as a Chrome Trace Event Format JSON document.
/// `dropped` (from [`crate::take_events`]) is recorded in `otherData`
/// so truncated rings are visible in the artifact, not silent.
pub fn chrome_trace_json(events: &[Event], dropped: u64) -> String {
    let mut order: Vec<&Event> = events.iter().collect();
    order.sort_by_key(|e| (e.ts_us, e.seq));

    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"ts\":0,\
         \"args\":{{\"name\":\"slimcodeml\"}}}}"
    ));
    for e in order {
        out.push(',');
        push_event(&mut out, e);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{");
    out.push_str(&format!(
        "\"program\":\"slimcodeml\",\"format\":\"slimcodeml.trace.v1\",\"droppedEvents\":{dropped}"
    ));
    out.push_str("}}\n");
    out
}

fn push_event(out: &mut String, e: &Event) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{PID},\"tid\":{}",
        escape_json(e.name),
        escape_json(e.cat),
        e.phase.letter(),
        e.ts_us,
        e.tid
    ));
    // Instant events need a scope; thread scope keeps them attached to
    // the emitting thread's track.
    if e.phase.letter() == 'i' {
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in e.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape_json(k), v.to_json()));
    }
    out.push_str("}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Phase, Value};

    fn ev(seq: u64, ts_us: u64, tid: u64, phase: Phase, name: &'static str) -> Event {
        Event {
            seq,
            ts_us,
            tid,
            phase,
            name,
            cat: "test",
            args: vec![],
        }
    }

    #[test]
    fn document_shape_and_ordering() {
        let mut a = ev(1, 10, 0, Phase::Begin, "outer");
        a.args.push(("k", Value::U64(3)));
        let b = ev(0, 5, 1, Phase::Instant, "tick");
        let json = chrome_trace_json(&[a, b], 2);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"droppedEvents\":2"));
        // The earlier-timestamp event must be serialized first (after
        // the metadata record).
        let tick = json.find("\"name\":\"tick\"").unwrap();
        let outer = json.find("\"name\":\"outer\"").unwrap();
        assert!(tick < outer, "events must be time-sorted");
        assert!(json.contains("\"s\":\"t\""), "instants carry thread scope");
        assert!(json.contains("\"args\":{\"k\":3}"));
    }

    #[test]
    fn equal_timestamps_fall_back_to_sequence() {
        let a = ev(2, 7, 0, Phase::End, "second");
        let b = ev(1, 7, 0, Phase::Begin, "first");
        let json = chrome_trace_json(&[a, b], 0);
        let first = json.find("\"name\":\"first\"").unwrap();
        let second = json.find("\"name\":\"second\"").unwrap();
        assert!(first < second);
    }
}
