//! The event model: what one traced occurrence looks like.
//!
//! Events are deliberately tiny and self-describing — a phase (span
//! begin/end or instant), static name and category strings, a
//! monotonic timestamp in microseconds since the trace epoch, the
//! recording thread's stable id, a global sequence number for total
//! ordering, and a small list of key=value attributes.

/// What kind of event this is, mirroring the Chrome Trace Event
/// Format phases we emit (`B`, `E`, `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A span opened (`ph: "B"`).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point-in-time occurrence (`ph: "i"`).
    Instant,
}

impl Phase {
    /// The Chrome Trace Event Format phase letter.
    pub fn letter(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Instant => 'i',
        }
    }
}

/// An attribute value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer attribute.
    U64(u64),
    /// Floating-point attribute.
    F64(f64),
    /// Boolean attribute.
    Bool(bool),
    /// Short string attribute (owned: values are often formatted).
    Str(String),
}

impl Value {
    /// Render the value as it appears in JSON (numbers and booleans
    /// bare, strings escaped and quoted).
    pub fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::F64(v) => {
                if v.is_finite() {
                    format!("{v:?}")
                } else {
                    "null".to_string()
                }
            }
            Value::Bool(v) => v.to_string(),
            Value::Str(s) => format!("\"{}\"", escape_json(s)),
        }
    }

    /// Render the value for compact human-readable dumps.
    pub fn to_plain(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::F64(v) => format!("{v:?}"),
            Value::Bool(v) => v.to_string(),
            Value::Str(s) => s.clone(),
        }
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global sequence number: a total order over all events in the
    /// process, used to tie-break equal timestamps and to replay
    /// per-thread nesting exactly.
    pub seq: u64,
    /// Microseconds since the trace epoch (first event in the process).
    pub ts_us: u64,
    /// Stable small integer id of the recording thread.
    pub tid: u64,
    /// Begin / End / Instant.
    pub phase: Phase,
    /// Event name (static: instrumentation sites name their events).
    pub name: &'static str,
    /// Category (one per instrumented layer: `opt`, `lik`, `expm`, `batch`).
    pub cat: &'static str,
    /// key=value attributes.
    pub args: Vec<(&'static str, Value)>,
}

impl Event {
    /// Compact single-line rendering for flight-recorder dumps:
    /// `+1234us t2 B opt.iteration iter=3 lnl=-1234.5`.
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "+{}us t{} {} {}",
            self.ts_us,
            self.tid,
            self.phase.letter(),
            self.name
        );
        for (k, v) in &self.args {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(&v.to_plain());
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_letters_match_chrome_format() {
        assert_eq!(Phase::Begin.letter(), 'B');
        assert_eq!(Phase::End.letter(), 'E');
        assert_eq!(Phase::Instant.letter(), 'i');
    }

    #[test]
    fn value_json_rendering() {
        assert_eq!(Value::U64(7).to_json(), "7");
        assert_eq!(Value::Bool(true).to_json(), "true");
        assert_eq!(Value::F64(f64::NAN).to_json(), "null");
        assert_eq!(Value::Str("a\"b".to_string()).to_json(), "\"a\\\"b\"");
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(escape_json("a\nb\t\u{1}"), "a\\nb\\t\\u0001");
    }

    #[test]
    fn event_line_is_compact() {
        let e = Event {
            seq: 0,
            ts_us: 12,
            tid: 3,
            phase: Phase::Instant,
            name: "expm.cache.hit",
            cat: "expm",
            args: vec![("kappa", Value::F64(2.0))],
        };
        assert_eq!(e.to_line(), "+12us t3 i expm.cache.hit kappa=2.0");
    }
}
