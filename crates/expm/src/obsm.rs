//! slim-obs handles for the expm layer.
//!
//! Handles are resolved once per process; `EigenCache` hot paths then
//! touch only the cached `Arc`s (relaxed atomics, no registry lock).

use slim_obs::{Counter, Gauge};
use std::sync::{Arc, OnceLock};

#[derive(Debug)]
pub(crate) struct ExpmMetrics {
    /// `expm.cache.hits` — eigendecomposition cache hits.
    pub hits: Arc<Counter>,
    /// `expm.cache.misses` — cache misses (fresh decompositions).
    pub misses: Arc<Counter>,
    /// `expm.cache.evictions` — entries dropped by wholesale clears.
    pub evictions: Arc<Counter>,
    /// `expm.cache.occupancy` — entries resident after the last insert.
    pub occupancy: Arc<Gauge>,
    /// `expm.cache.capacity` — configured capacity of the last cache built.
    pub capacity: Arc<Gauge>,
}

static M: OnceLock<ExpmMetrics> = OnceLock::new();

pub(crate) fn metrics() -> &'static ExpmMetrics {
    M.get_or_init(|| ExpmMetrics {
        hits: slim_obs::counter("expm.cache.hits"),
        misses: slim_obs::counter("expm.cache.misses"),
        evictions: slim_obs::counter("expm.cache.evictions"),
        occupancy: slim_obs::gauge("expm.cache.occupancy"),
        capacity: slim_obs::gauge("expm.cache.capacity"),
    })
}

/// Eagerly register every expm metric name so snapshots are
/// schema-stable even before the first cache access.
pub fn register_metrics() {
    let _ = metrics();
}
