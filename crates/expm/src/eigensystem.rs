//! Eigendecomposition-backed transition-probability computation.

use slim_linalg::gemm::matmul;
use slim_linalg::{naive, sym_eigen, syrk, EigenMethod, Mat, SymEigen, Transpose};
use slim_model::RateMatrix;

/// The eigendecomposition of the symmetric form `A = Π^{1/2} S Π^{1/2}` of
/// one rate matrix, plus the frequency scalings needed to reconstruct
/// `P(t) = e^{Qt}` for any branch length `t`.
///
/// Building this costs O(n³) **once per distinct ω value**; each branch
/// then pays only the reconstruction (steps 3–5 of §III-A).
#[derive(Debug, Clone)]
pub struct EigenSystem {
    /// Eigenvalues/eigenvectors of `A`.
    pub eigen: SymEigen,
    /// `π_i^{1/2}`.
    pub sqrt_pi: Vec<f64>,
    /// `π_i^{-1/2}`.
    pub inv_sqrt_pi: Vec<f64>,
    /// Equilibrium frequencies π.
    pub pi: Vec<f64>,
    /// Process-unique decomposition identity — see [`EigenSystem::id`].
    id: u64,
}

/// Next [`EigenSystem::id`]; ids only need to be distinct, never ordered.
static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl EigenSystem {
    /// Decompose a rate matrix (§III-A steps 1–2).
    ///
    /// # Errors
    /// Propagates eigensolver failures.
    pub fn from_rate_matrix(
        rm: &RateMatrix,
        method: EigenMethod,
    ) -> Result<EigenSystem, slim_linalg::LinalgError> {
        let mut eigen = sym_eigen(&rm.a, method)?;
        // A is similar to the generator Q, whose spectrum is provably in
        // (-∞, 0]; a computed positive eigenvalue is rounding noise from
        // the symmetric solve (absolute accuracy ~ n·ε·‖A‖, reaching
        // ~1e-5 when bound-corner parameters push ‖A‖ toward 1e10).
        // Unclamped it escapes through e^{λt} as a uniform row-sum
        // inflation on long branches; clamped, e^{λt} ≤ 1 always.
        for v in &mut eigen.values {
            *v = v.min(0.0);
        }
        #[cfg(feature = "sanitize")]
        slim_linalg::sanitize::check_generator_spectrum(&eigen.values, 1e-11, || {
            format!(
                "eigendecomposition of A = Π^1/2 S Π^1/2 (order {}, method {method:?}, \
                 applied_factor {})",
                rm.a.rows(),
                rm.applied_factor
            )
        });
        Ok(EigenSystem {
            eigen,
            sqrt_pi: rm.sqrt_pi.clone(),
            inv_sqrt_pi: rm.inv_sqrt_pi.clone(),
            pi: rm.pi.clone(),
            // check: allow(atomic-ordering) monotonic id allocator, no synchronization role
            id: NEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        })
    }

    /// Process-unique identity of this decomposition, allocated once per
    /// [`EigenSystem::from_rate_matrix`] call and shared by clones (a
    /// clone carries the same numeric content). Two live systems with the
    /// same id reconstruct bit-identical `P(t)` for the same `t`, which
    /// is what [`crate::PtCache`] keys on — cheaper and stricter than
    /// fingerprinting the decomposition's floats.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Matrix order (61 for codon models).
    pub fn order(&self) -> usize {
        self.eigen.values.len()
    }

    /// `exp(λᵢ·t)` for all eigenvalues.
    fn exp_lambda(&self, t: f64) -> Vec<f64> {
        self.eigen.values.iter().map(|&l| (l * t).exp()).collect()
    }

    /// **Eq. 9, naive kernels** — the CodeML-style baseline.
    ///
    /// `Ỹ = X e^{Λt}` (O(n²)), then `Z = Ỹ·Xᵀ` via the textbook strided
    /// triple loop (≈ 2n³ flops), then `P = Π^{-1/2} Z Π^{1/2}` (O(n²)).
    pub fn transition_matrix_eq9_naive(&self, t: f64) -> Mat {
        let y_tilde = self.eigen.vectors.mul_diag_right(&self.exp_lambda(t));
        let z = naive::matmul_bt(&y_tilde, &self.eigen.vectors);
        self.back_transform(z, t)
    }

    /// **Eq. 9, tuned kernels** — same algorithm as
    /// [`Self::transition_matrix_eq9_naive`] but through the blocked
    /// `gemm`. Separates "better kernels" from "fewer flops" in ablations.
    // check: hot P(t) reconstruction, Eq. 9 kernel path
    pub fn transition_matrix_eq9(&self, t: f64) -> Mat {
        let y_tilde = self.eigen.vectors.mul_diag_right(&self.exp_lambda(t));
        let z = matmul(&y_tilde, Transpose::No, &self.eigen.vectors, Transpose::Yes);
        self.back_transform(z, t)
    }

    /// **Eq. 10 — the SlimCodeML path.**
    ///
    /// `Y = X e^{Λt/2}` (§III-A step 3), `Z = Y·Yᵀ` via the symmetric
    /// rank-k update (step 4, ≈ n³ flops — half of Eq. 9), then
    /// `P = Π^{-1/2} Z Π^{1/2}` (step 5).
    // check: hot P(t) reconstruction, Eq. 10 syrk path
    pub fn transition_matrix_eq10(&self, t: f64) -> Mat {
        let half: Vec<f64> = self
            .eigen
            .values
            .iter()
            .map(|&l| (l * t * 0.5).exp())
            .collect();
        let y = self.eigen.vectors.mul_diag_right(&half);
        // Lane-padded output: P(t) feeds the CPV kernels, whose column
        // loops run tail-free over the padded width (61 → 64). The
        // logical values are identical to a dense layout.
        let mut z = Mat::zeros_padded(self.order(), self.order());
        syrk(1.0, &y, 0.0, &mut z);
        self.back_transform(z, t)
    }

    /// `P = Π^{-1/2} · Z · Π^{1/2}` with negative rounding noise clamped to
    /// zero (probabilities), as CodeML does. `t` is the branch length the
    /// caller reconstructed at, carried for sanitize-failure context.
    fn back_transform(&self, z: Mat, t: f64) -> Mat {
        let mut p = z
            .mul_diag_left(&self.inv_sqrt_pi)
            .mul_diag_right(&self.sqrt_pi);
        for v in p.as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        #[cfg(feature = "sanitize")]
        slim_linalg::sanitize::check_row_stochastic(&p, 1e-7, 1e-7, || {
            let lo = self
                .eigen
                .values
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            let hi = self
                .eigen
                .values
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            format!("P(t) reconstruction at branch length t={t} (spectrum [{lo:.6e}, {hi:.6e}])")
        });
        #[cfg(not(feature = "sanitize"))]
        let _ = t;
        p
    }

    /// **Eq. 12–13 preparation**: the symmetric matrix
    /// `M = Ŷ·Ŷᵀ` with `Ŷ = Π^{-1/2} X e^{Λt/2}`, such that
    /// `e^{Qt}·w = M·(Π·w)`.
    ///
    /// `M` is symmetric, so applying it with `symv` touches each
    /// off-diagonal entry once — "saves about half of the memory accesses"
    /// (§II-C2).
    // check: hot symmetric-form transition build
    pub fn symmetric_transition(&self, t: f64) -> crate::cpv::SymTransition {
        let half: Vec<f64> = self
            .eigen
            .values
            .iter()
            .map(|&l| (l * t * 0.5).exp())
            .collect();
        let y_hat = self
            .eigen
            .vectors
            .mul_diag_left(&self.inv_sqrt_pi)
            .mul_diag_right(&half);
        // Lane-padded for the same reason as the Eq. 10 path: `symv` row
        // slices stay logical-width, so values are unchanged.
        let mut m = Mat::zeros_padded(self.order(), self.order());
        syrk(1.0, &y_hat, 0.0, &mut m);
        #[cfg(feature = "sanitize")]
        {
            // The implied transition matrix is P = M·Π, so row i of P sums
            // to Σ_j M_ij·π_j — that must be 1 even though M itself is not
            // stochastic.
            use slim_linalg::NeumaierSum;
            for i in 0..self.order() {
                let mut sum = NeumaierSum::new();
                let mut max_abs = 0.0f64;
                for (j, &pij) in self.pi.iter().enumerate() {
                    let term = m[(i, j)] * pij;
                    sum.add(term);
                    max_abs = max_abs.max(term.abs());
                }
                let s = sum.total();
                slim_linalg::sanitize::check_finite("implied P row sum", s, || {
                    format!("SymTransition row {i} at branch length t={t}")
                });
                // An all-zero implied row is tolerated for the same reason
                // `check_row_stochastic` tolerates one: extreme line-search
                // scales can underflow e^{Λt} entirely, collapsing M to
                // zero — a rejected trial point, not broken algebra.
                let zero_row = s.abs() <= 1e-7 && max_abs <= 1e-7;
                if (s - 1.0).abs() > 1e-7 && !zero_row {
                    // check: allow(rob-unwrap) sanitize tripwire: a detected invariant violation must abort
                    panic!(
                        "sanitize: SymTransition implied row {i} sums to {s} \
                         (want 1 within 1e-7) at branch length t={t}"
                    );
                }
            }
        }
        crate::cpv::SymTransition::new(m, self.pi.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taylor::expm_taylor;
    use slim_bio::GeneticCode;
    use slim_model::{build_rate_matrix, ScalePolicy};

    fn test_system(omega: f64) -> (RateMatrix, EigenSystem) {
        let code = GeneticCode::universal();
        let mut pi: Vec<f64> = (0..61).map(|i| 1.0 + ((i * 5) % 11) as f64).collect();
        let s: f64 = pi.iter().sum();
        for p in &mut pi {
            *p /= s;
        }
        let rm = build_rate_matrix(&code, 2.3, omega, &pi, ScalePolicy::PerClass);
        let es = EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).unwrap();
        (rm, es)
    }

    #[test]
    fn rows_sum_to_one_all_paths() {
        let (_, es) = test_system(0.5);
        for t in [0.01, 0.1, 1.0, 5.0] {
            for p in [
                es.transition_matrix_eq9_naive(t),
                es.transition_matrix_eq9(t),
                es.transition_matrix_eq10(t),
            ] {
                for i in 0..61 {
                    let s: f64 = p.row(i).iter().sum();
                    assert!((s - 1.0).abs() < 1e-9, "t={t} row {i}: {s}");
                }
            }
        }
    }

    #[test]
    fn eq9_and_eq10_agree() {
        let (_, es) = test_system(1.7);
        for t in [0.001, 0.05, 0.5, 2.0] {
            let p9 = es.transition_matrix_eq9(t);
            let p9n = es.transition_matrix_eq9_naive(t);
            let p10 = es.transition_matrix_eq10(t);
            assert!(p9.approx_eq(&p10, 1e-11), "eq9 vs eq10 at t={t}");
            assert!(p9.approx_eq(&p9n, 1e-11), "eq9 tuned vs naive at t={t}");
        }
    }

    #[test]
    fn matches_taylor_oracle() {
        let (rm, es) = test_system(0.3);
        for t in [0.01, 0.2, 1.0] {
            let mut qt = rm.q.clone();
            qt.scale(t);
            let oracle = expm_taylor(&qt);
            let p10 = es.transition_matrix_eq10(t);
            assert!(
                p10.approx_eq(&oracle, 1e-9),
                "t={t}: max diff {}",
                p10.max_abs_diff(&oracle)
            );
        }
    }

    #[test]
    fn t_zero_gives_identity() {
        let (_, es) = test_system(0.8);
        let p = es.transition_matrix_eq10(0.0);
        assert!(p.approx_eq(&Mat::identity(61), 1e-10));
    }

    #[test]
    fn long_time_converges_to_stationary() {
        // As t→∞ each row of P(t) approaches π.
        let (rm, es) = test_system(0.5);
        let p = es.transition_matrix_eq10(500.0);
        for i in 0..61 {
            for j in 0..61 {
                assert!((p[(i, j)] - rm.pi[j]).abs() < 1e-6, "({i},{j})");
            }
        }
    }

    #[test]
    fn probabilities_nonnegative() {
        let (_, es) = test_system(2.5);
        for t in [0.001, 0.1, 1.0, 10.0] {
            let p = es.transition_matrix_eq10(t);
            assert!(p.as_slice().iter().all(|&v| v >= 0.0), "t={t}");
        }
    }

    #[test]
    fn chapman_kolmogorov() {
        // P(s+t) = P(s)·P(t).
        let (_, es) = test_system(0.9);
        let p1 = es.transition_matrix_eq10(0.3);
        let p2 = es.transition_matrix_eq10(0.7);
        let p3 = es.transition_matrix_eq10(1.0);
        let prod = matmul(&p1, Transpose::No, &p2, Transpose::No);
        assert!(prod.approx_eq(&p3, 1e-10));
    }

    #[test]
    fn symmetric_transition_matches_dense_apply() {
        let (_, es) = test_system(1.2);
        let t = 0.4;
        let p = es.transition_matrix_eq10(t);
        let sym = es.symmetric_transition(t);
        let w: Vec<f64> = (0..61).map(|i| ((i * 13 % 7) as f64 + 1.0) / 8.0).collect();
        let dense = p.mul_vec(&w);
        let via_sym = sym.apply(&w);
        for i in 0..61 {
            assert!((dense[i] - via_sym[i]).abs() < 1e-11, "i={i}");
        }
    }
}
