//! Per-branch transition-operator reconstruction cache.
//!
//! During a derivative-based fit most likelihood evaluations change a
//! single branch length, leaving every other branch's `P(t)` — already an
//! O(n²)–O(n³) reconstruction — bit-identical to the previous evaluation.
//! [`PtCache`] is the slot-addressed store behind that reuse: one slot per
//! (tree node × ω class), validated by a [`PtKey`] capturing *which*
//! eigendecomposition ([`EigenSystem::id`]) and *which exact* branch
//! length bits produced the stored operator. A slot whose key matches is
//! guaranteed to hold the same bytes a fresh reconstruction would produce,
//! because reconstruction is a deterministic function of (decomposition,
//! t).
//!
//! Unlike [`crate::EigenCache`] this is not a shared map: each reuse
//! evaluator owns one, no locking, and lookups are a slot index plus one
//! key comparison — cheap enough for the hot path.

use crate::EigenSystem;

/// Identity of a reconstruction input: which eigendecomposition and which
/// exact branch-length bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtKey {
    /// [`EigenSystem::id`] of the decomposition reconstructed from.
    pub eigensystem: u64,
    /// `t.to_bits()` of the branch length reconstructed at.
    pub t_bits: u64,
}

impl PtKey {
    /// Key for reconstructing from `es` at branch length `t`.
    pub fn new(es: &EigenSystem, t: f64) -> PtKey {
        PtKey {
            eigensystem: es.id(),
            t_bits: t.to_bits(),
        }
    }
}

/// A fixed-geometry, slot-addressed cache of per-branch reconstructions.
///
/// `V` is whatever the reconstruction produces (the likelihood engine
/// stores its `TransOp`); this crate only manages validity and stats.
#[derive(Debug, Default)]
pub struct PtCache<V> {
    slots: Vec<Option<(PtKey, V)>>,
    hits: u64,
    misses: u64,
}

impl<V> PtCache<V> {
    /// An empty cache with `n_slots` addressable slots.
    pub fn new(n_slots: usize) -> PtCache<V> {
        let mut slots = Vec::new();
        slots.resize_with(n_slots, || None);
        PtCache {
            slots,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of addressable slots.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Re-dimension to `n_slots`, dropping every cached value (the slot
    /// addressing scheme changed, so old entries are meaningless).
    pub fn resize(&mut self, n_slots: usize) {
        if self.slots.len() != n_slots {
            self.slots.clear();
            self.slots.resize_with(n_slots, || None);
        }
    }

    /// Check whether `slot` currently holds a value produced under `key`,
    /// recording a hit or miss. A `true` return guarantees
    /// [`PtCache::value`] for the same slot is the bit-identical result of
    /// recomputing under `key`.
    // check: hot reuse-engine per-operator validity probe
    pub fn probe(&mut self, slot: usize, key: PtKey) -> bool {
        let current = matches!(self.slots.get(slot), Some(Some((k, _))) if *k == key);
        if current {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        current
    }

    /// The value stored in `slot`, regardless of key (callers gate on
    /// [`PtCache::probe`] first).
    // check: hot reuse-engine operator fetch
    pub fn value(&self, slot: usize) -> Option<&V> {
        self.slots
            .get(slot)
            .and_then(|s| s.as_ref())
            .map(|(_, v)| v)
    }

    /// Store `value` in `slot` under `key`, replacing any previous entry.
    ///
    /// # Panics
    /// Panics if `slot` is out of range (caller sized the cache).
    pub fn insert(&mut self, slot: usize, key: PtKey, value: V) {
        self.slots[slot] = Some((key, value));
    }

    /// (hits, misses) probe counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hits / (hits + misses); defined as 0.0 before any probe so sinks
    /// never see NaN.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drop every cached value (keys included), keeping the geometry and
    /// the counters.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(es: u64, t: f64) -> PtKey {
        PtKey {
            eigensystem: es,
            t_bits: t.to_bits(),
        }
    }

    #[test]
    fn probe_miss_then_hit() {
        let mut c: PtCache<u32> = PtCache::new(4);
        assert!(!c.probe(2, key(1, 0.5)));
        c.insert(2, key(1, 0.5), 42);
        assert!(c.probe(2, key(1, 0.5)));
        assert_eq!(c.value(2), Some(&42));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn key_changes_invalidate() {
        let mut c: PtCache<u32> = PtCache::new(1);
        c.insert(0, key(1, 0.5), 7);
        // Different branch length bits.
        assert!(!c.probe(0, key(1, 0.5 + 1e-16)));
        // Different decomposition identity.
        assert!(!c.probe(0, key(2, 0.5)));
        // Exact match still hits.
        assert!(c.probe(0, key(1, 0.5)));
    }

    #[test]
    fn out_of_range_probe_is_a_miss() {
        let mut c: PtCache<u32> = PtCache::new(1);
        assert!(!c.probe(5, key(1, 1.0)));
        assert_eq!(c.value(5), None);
    }

    #[test]
    fn resize_drops_values() {
        let mut c: PtCache<u32> = PtCache::new(2);
        c.insert(1, key(1, 1.0), 9);
        c.resize(3);
        assert!(!c.probe(1, key(1, 1.0)));
        // Same-size resize keeps entries.
        c.insert(1, key(1, 1.0), 9);
        c.resize(3);
        assert!(c.probe(1, key(1, 1.0)));
    }

    #[test]
    fn hit_rate_never_nan() {
        let c: PtCache<u32> = PtCache::new(1);
        assert_eq!(c.hit_rate(), 0.0);
        let mut c = c;
        c.insert(0, key(1, 1.0), 1);
        let _ = c.probe(0, key(1, 1.0));
        let _ = c.probe(0, key(1, 2.0));
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn clear_keeps_geometry() {
        let mut c: PtCache<u32> = PtCache::new(2);
        c.insert(0, key(1, 1.0), 3);
        c.clear();
        assert_eq!(c.n_slots(), 2);
        assert!(!c.probe(0, key(1, 1.0)));
    }

    #[test]
    fn eigensystem_ids_are_distinct_and_shared_by_clones() {
        use slim_bio::GeneticCode;
        use slim_model::{build_rate_matrix, ScalePolicy};
        let code = GeneticCode::universal();
        let pi = vec![1.0 / 61.0; 61];
        let rm = build_rate_matrix(&code, 2.0, 0.5, &pi, ScalePolicy::PerClass);
        let a = EigenSystem::from_rate_matrix(&rm, slim_linalg::EigenMethod::HouseholderQl)
            .expect("eigen");
        let b = EigenSystem::from_rate_matrix(&rm, slim_linalg::EigenMethod::HouseholderQl)
            .expect("eigen");
        assert_ne!(a.id(), b.id(), "fresh decompositions get fresh ids");
        assert_eq!(a.clone().id(), a.id(), "clones keep the id");
    }
}
