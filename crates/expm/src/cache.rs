//! Cross-evaluation eigendecomposition cache.
//!
//! During derivative-based optimization most likelihood evaluations perturb
//! a *branch length*, leaving (κ, ω, π) — and hence the eigendecomposition
//! — unchanged. Caching `EigenSystem`s keyed by the exact parameter bits
//! lets those evaluations skip §III-A steps 1–2 entirely. This goes one
//! step beyond the paper (which rebuilds per iteration) and is ablated in
//! the benches; the Slim engine uses it, the CodeML-style engine does not.

use crate::EigenSystem;
use parking_lot::Mutex;
use slim_linalg::EigenMethod;
use slim_model::RateMatrix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Exact-bits cache key: (κ, ω, scale-policy-resolved Q) are captured by
/// hashing κ/ω bit patterns plus a fingerprint of π.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    kappa_bits: u64,
    omega_bits: u64,
    pi_fingerprint: u64,
    scale_bits: u64,
}

/// A bounded map from rate-matrix parameters to shared eigendecompositions.
#[derive(Debug)]
pub struct EigenCache {
    map: Mutex<HashMap<Key, Arc<EigenSystem>>>,
    capacity: usize,
    // Plain atomics: the parallel eigen phase probes the cache from
    // several threads at once, and the counters must not serialize it.
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl EigenCache {
    /// Fallback capacity when nothing is known about the problem shape.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Smallest capacity [`EigenCache::adaptive_capacity`] will pick.
    pub const MIN_ADAPTIVE_CAPACITY: usize = 16;

    /// Largest capacity [`EigenCache::adaptive_capacity`] will pick.
    pub const MAX_ADAPTIVE_CAPACITY: usize = 1024;

    /// Capacity sized to the problem: `branches × ω-classes`, clamped to
    /// `[MIN_ADAPTIVE_CAPACITY, MAX_ADAPTIVE_CAPACITY]`.
    ///
    /// One optimizer iteration touches at most one eigensystem per
    /// (branch-site ω class) per distinct scale factor, and line searches
    /// along a single branch revisit the same keys; `branches ×
    /// ω-classes` therefore covers a full evaluation sweep without a
    /// wholesale clear, while the clamp keeps tiny trees from thrashing
    /// and huge trees from hoarding (an `EigenSystem` is ~60 KiB at
    /// codon order 61).
    pub fn adaptive_capacity(branches: usize, omega_classes: usize) -> usize {
        branches
            .saturating_mul(omega_classes)
            .clamp(Self::MIN_ADAPTIVE_CAPACITY, Self::MAX_ADAPTIVE_CAPACITY)
    }

    /// Create a cache holding at most `capacity` decompositions (it is
    /// cleared wholesale when full — parameter trajectories revisit few
    /// distinct values, so LRU machinery is not worth its overhead).
    pub fn new(capacity: usize) -> EigenCache {
        crate::obsm::metrics().capacity.set(capacity.max(1) as f64);
        EigenCache {
            map: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Fetch or compute the eigensystem for `(kappa, omega, rm)`.
    ///
    /// # Errors
    /// Propagates eigensolver failures (never cached).
    pub fn get_or_compute(
        &self,
        kappa: f64,
        omega: f64,
        rm: &RateMatrix,
        method: EigenMethod,
    ) -> Result<Arc<EigenSystem>, slim_linalg::LinalgError> {
        let key = Key {
            kappa_bits: kappa.to_bits(),
            omega_bits: omega.to_bits(),
            pi_fingerprint: fingerprint(&rm.pi),
            scale_bits: rm.applied_factor.to_bits(),
        };
        if let Some(found) = self.map.lock().get(&key).cloned() {
            // check: allow(atomic-ordering) monotonic hit counter, no synchronization role
            self.hits.fetch_add(1, Ordering::Relaxed);
            crate::obsm::metrics().hits.inc();
            slim_trace::instant_with("expm.cache.hit", "expm", || {
                vec![
                    ("kappa", slim_trace::Value::F64(kappa)),
                    ("omega", slim_trace::Value::F64(omega)),
                ]
            });
            return Ok(found);
        }
        // check: allow(atomic-ordering) monotonic miss counter, no synchronization role
        self.misses.fetch_add(1, Ordering::Relaxed);
        crate::obsm::metrics().misses.inc();
        slim_trace::instant_with("expm.cache.miss", "expm", || {
            vec![
                ("kappa", slim_trace::Value::F64(kappa)),
                ("omega", slim_trace::Value::F64(omega)),
            ]
        });
        let es = Arc::new(EigenSystem::from_rate_matrix(rm, method)?);
        let mut map = self.map.lock();
        if map.len() >= self.capacity {
            let evicted = map.len() as u64;
            // check: allow(atomic-ordering) monotonic eviction counter, no synchronization role
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            crate::obsm::metrics().evictions.add(map.len() as u64);
            slim_trace::instant_with("expm.cache.evict", "expm", || {
                vec![("entries", slim_trace::Value::U64(map.len() as u64))]
            });
            map.clear();
        }
        map.insert(key, es.clone());
        crate::obsm::metrics().occupancy.set(map.len() as f64);
        Ok(es)
    }

    /// (hits, misses) counters — used by ablation benches to verify the
    /// cache is actually being exercised.
    pub fn stats(&self) -> (u64, u64) {
        (
            // check: allow(atomic-ordering) approximate stats read, counters are metrics-only
            self.hits.load(Ordering::Relaxed),
            // check: allow(atomic-ordering) approximate stats read, counters are metrics-only
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// The maximum number of resident decompositions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted so far by wholesale capacity clears.
    pub fn evictions(&self) -> u64 {
        // check: allow(atomic-ordering) approximate stats read, counter is metrics-only
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hits / (hits + misses), or `None` before any access.
    pub fn hit_rate(&self) -> Option<f64> {
        let (hits, misses) = self.stats();
        let total = hits + misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// Drop all cached decompositions.
    pub fn clear(&self) {
        self.map.lock().clear();
    }
}

/// Order-sensitive 64-bit FNV-1a over the frequency bit patterns.
fn fingerprint(pi: &[f64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &p in pi {
        for b in p.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_bio::GeneticCode;
    use slim_model::{build_rate_matrix, ScalePolicy};

    fn rm(omega: f64) -> RateMatrix {
        let code = GeneticCode::universal();
        let pi = vec![1.0 / 61.0; 61];
        build_rate_matrix(&code, 2.0, omega, &pi, ScalePolicy::PerClass)
    }

    #[test]
    fn cache_hits_on_repeat() {
        let cache = EigenCache::new(16);
        let m = rm(0.5);
        let a = cache
            .get_or_compute(2.0, 0.5, &m, EigenMethod::HouseholderQl)
            .unwrap();
        let b = cache
            .get_or_compute(2.0, 0.5, &m, EigenMethod::HouseholderQl)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn distinct_omegas_miss() {
        let cache = EigenCache::new(16);
        let _ = cache
            .get_or_compute(2.0, 0.5, &rm(0.5), EigenMethod::HouseholderQl)
            .unwrap();
        let _ = cache
            .get_or_compute(2.0, 1.0, &rm(1.0), EigenMethod::HouseholderQl)
            .unwrap();
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn capacity_bound_respected() {
        let cache = EigenCache::new(1);
        let _ = cache
            .get_or_compute(2.0, 0.5, &rm(0.5), EigenMethod::HouseholderQl)
            .unwrap();
        let _ = cache
            .get_or_compute(2.0, 1.0, &rm(1.0), EigenMethod::HouseholderQl)
            .unwrap();
        // First entry was evicted by the wholesale clear.
        let _ = cache
            .get_or_compute(2.0, 0.5, &rm(0.5), EigenMethod::HouseholderQl)
            .unwrap();
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, 3);
        // Each of the two wholesale clears dropped one resident entry.
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn hit_rate_reflects_stats() {
        let cache = EigenCache::new(16);
        assert_eq!(cache.hit_rate(), None);
        let m = rm(0.5);
        for _ in 0..4 {
            let _ = cache
                .get_or_compute(2.0, 0.5, &m, EigenMethod::HouseholderQl)
                .unwrap();
        }
        assert_eq!(cache.hit_rate(), Some(0.75));
    }

    #[test]
    fn clear_empties() {
        let cache = EigenCache::new(8);
        let _ = cache
            .get_or_compute(2.0, 0.5, &rm(0.5), EigenMethod::HouseholderQl)
            .unwrap();
        cache.clear();
        let _ = cache
            .get_or_compute(2.0, 0.5, &rm(0.5), EigenMethod::HouseholderQl)
            .unwrap();
        assert_eq!(cache.stats().1, 2);
    }

    #[test]
    fn adaptive_capacity_clamps() {
        // Tiny problem: floor wins.
        assert_eq!(
            EigenCache::adaptive_capacity(3, 3),
            EigenCache::MIN_ADAPTIVE_CAPACITY
        );
        // Mid-size problem: exact product.
        assert_eq!(EigenCache::adaptive_capacity(18, 3), 54);
        // Huge problem: ceiling wins.
        assert_eq!(
            EigenCache::adaptive_capacity(5000, 3),
            EigenCache::MAX_ADAPTIVE_CAPACITY
        );
        let cache = EigenCache::new(EigenCache::adaptive_capacity(18, 3));
        assert_eq!(cache.capacity(), 54);
    }

    #[test]
    fn fingerprint_distinguishes_pi() {
        let mut pi1 = vec![1.0 / 61.0; 61];
        let pi2 = {
            let mut p = pi1.clone();
            p[0] += 1e-9;
            p[1] -= 1e-9;
            p
        };
        assert_ne!(fingerprint(&pi1), fingerprint(&pi2));
        pi1[0] += 0.0; // no-op keeps mutability warning away
    }
}
