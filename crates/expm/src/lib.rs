//! # slim-expm
//!
//! Transition-probability matrices `P(t) = e^{Qt}` for codon models — the
//! computational core of the paper (§II-C1, §III-A).
//!
//! Given the symmetric form `A = Π^{1/2} S Π^{1/2}` of a time-reversible
//! rate matrix `Q = SΠ`, one eigendecomposition `A = X Λ Xᵀ` serves every
//! branch length `t`:
//!
//! ```text
//! e^{Qt} = Π^{-1/2} · X e^{Λt} Xᵀ · Π^{1/2}        (Eqs. 5–8)
//! ```
//!
//! Three reconstruction paths are implemented:
//!
//! * **Eq. 9** (CodeML-style baseline): `Z = (X e^{Λt}) · Xᵀ` — a general
//!   matrix product, ≈ 2n³ flops, here in both naive-kernel and
//!   tuned-kernel flavors;
//! * **Eq. 10** (SlimCodeML): `Z = Y·Yᵀ` with `Y = X e^{Λt/2}` — a
//!   symmetric rank-k update (`dsyrk`), ≈ n³ flops: the paper's headline
//!   optimization;
//! * **Eq. 12** (post-hoc improvement): keep the *symmetric* matrix
//!   `M = Ŷ Ŷᵀ` with `Ŷ = Π^{-1/2} X e^{Λt/2}` and apply
//!   `e^{Qt} w = M (Π w)` — halving memory traffic of every per-site
//!   matrix×vector product.
//!
//! A scaling-and-squaring Taylor expm serves as an accuracy oracle.

mod cache;
pub mod cpv;
mod eigensystem;
mod obsm;
mod ptcache;
mod taylor;

pub use cache::EigenCache;
pub use cpv::{CpvScratch, CpvStrategy, SymTransition};
pub use eigensystem::EigenSystem;
pub use obsm::register_metrics;
pub use ptcache::{PtCache, PtKey};
pub use taylor::expm_taylor;
