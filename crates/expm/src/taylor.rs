//! Scaling-and-squaring Taylor matrix exponential — accuracy oracle.
//!
//! Deliberately algorithm-independent of the eigendecomposition paths so
//! it can referee them: Moler & Van Loan's "method 3" with scaling by
//! powers of two ([34] in the paper's bibliography).

use slim_linalg::gemm::matmul;
use slim_linalg::norms::inf_norm;
use slim_linalg::{Mat, Transpose};

/// Number of Taylor terms after scaling ‖A‖∞ below 0.5.
const TERMS: usize = 20;

/// `e^A` by scaling and squaring with a truncated Taylor series.
///
/// Accurate to ~1e-13 relative for the well-conditioned matrices produced
/// by codon models; used only in tests/benches, never on the hot path.
///
/// # Panics
/// Panics if `a` is not square.
pub fn expm_taylor(a: &Mat) -> Mat {
    assert!(a.is_square(), "expm_taylor: square matrix required");
    let n = a.rows();
    let norm = inf_norm(a);
    // Scale so the series converges fast: ‖A/2^s‖ ≤ 0.5.
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let mut scaled = a.clone();
    scaled.scale(1.0 / f64::powi(2.0, s as i32));

    // Taylor series: I + B + B²/2! + …
    let mut result = Mat::identity(n);
    let mut term = Mat::identity(n);
    for k in 1..=TERMS {
        term = matmul(&term, Transpose::No, &scaled, Transpose::No);
        term.scale(1.0 / k as f64);
        for (r, t) in result.as_mut_slice().iter_mut().zip(term.as_slice()) {
            *r += t;
        }
    }

    // Square back: e^A = (e^{A/2^s})^{2^s}.
    for _ in 0..s {
        result = matmul(&result, Transpose::No, &result, Transpose::No);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_zero_is_identity() {
        let z = Mat::zeros(4, 4);
        assert!(expm_taylor(&z).approx_eq(&Mat::identity(4), 1e-15));
    }

    #[test]
    fn exp_diagonal() {
        let a = Mat::from_diag(&[0.0, 1.0, -2.0]);
        let e = expm_taylor(&a);
        assert!((e[(0, 0)] - 1.0).abs() < 1e-13);
        assert!((e[(1, 1)] - 1f64.exp()).abs() < 1e-12);
        assert!((e[(2, 2)] - (-2f64).exp()).abs() < 1e-13);
        assert!(e[(0, 1)].abs() < 1e-15);
    }

    #[test]
    fn exp_nilpotent() {
        // N = [[0,1],[0,0]] → e^N = I + N exactly.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let e = expm_taylor(&a);
        assert!(e.approx_eq(&Mat::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]), 1e-14));
    }

    #[test]
    fn exp_rotation_generator() {
        // A = [[0,-θ],[θ,0]] → e^A = rotation by θ.
        let theta = 0.7f64;
        let a = Mat::from_rows(&[&[0.0, -theta], &[theta, 0.0]]);
        let e = expm_taylor(&a);
        let expect = Mat::from_rows(&[&[theta.cos(), -theta.sin()], &[theta.sin(), theta.cos()]]);
        assert!(e.approx_eq(&expect, 1e-13));
    }

    #[test]
    fn large_norm_triggers_scaling() {
        // θ = 40 forces many squarings; rotation must stay accurate.
        let theta = 40.0f64;
        let a = Mat::from_rows(&[&[0.0, -theta], &[theta, 0.0]]);
        let e = expm_taylor(&a);
        assert!((e[(0, 0)] - theta.cos()).abs() < 1e-9);
        assert!((e[(1, 0)] - theta.sin()).abs() < 1e-9);
    }

    #[test]
    fn additivity_for_commuting() {
        // For a single matrix A: e^{2A} = (e^A)².
        let a = Mat::from_rows(&[&[0.1, 0.2], &[0.3, -0.4]]);
        let mut a2 = a.clone();
        a2.scale(2.0);
        let lhs = expm_taylor(&a2);
        let ea = expm_taylor(&a);
        let rhs = matmul(&ea, Transpose::No, &ea, Transpose::No);
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }
}
