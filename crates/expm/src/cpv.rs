//! Conditional-probability-vector (CPV) application strategies (§III-B).
//!
//! Along every branch and at every alignment site, pruning computes
//! `w' = P(t)·w`. The paper ships per-site `dgemv` (its measured
//! configuration), notes that bundling all sites into one `dgemm` would be
//! faster (BLAS-3), and derives post-hoc the symmetric form of Eq. 12.
//! All four variants are implemented so the benches can ablate them.

use slim_linalg::{gemm, gemv, naive, symv, Mat, Transpose};

/// How to apply a transition matrix to per-site CPVs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CpvStrategy {
    /// Textbook per-site matrix×vector loops (CodeML baseline).
    NaivePerSite,
    /// Tuned per-site `gemv` — the configuration the paper measured.
    #[default]
    PerSiteGemv,
    /// One `gemm` over all sites (`P · W`, BLAS-3) — the §III-B
    /// "additional optimization opportunity".
    BundledGemm,
    /// Eq. 12: symmetric `M`, per-site `symv` on `Π·w` — halves memory
    /// traffic per product.
    SymmetricSymv,
}

/// Reusable column/result buffers for the per-site strategies.
///
/// The pattern-blocked parallel engine calls [`apply_dense_with`] once per
/// (branch, block) unit; keeping one scratch per worker thread makes those
/// calls allocation-free.
#[derive(Debug, Clone, Default)]
pub struct CpvScratch {
    col: Vec<f64>,
    res: Vec<f64>,
}

impl CpvScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> CpvScratch {
        CpvScratch::default()
    }

    /// Grow-only: a scratch that has already served a dimension `>= n`
    /// keeps its allocation (callers slice to `n`), so alternating unit
    /// sizes in the parallel engine never thrash reallocations.
    fn ensure(&mut self, n: usize) {
        if self.col.len() < n {
            self.col.resize(n, 0.0);
            self.res.resize(n, 0.0);
        }
    }
}

/// Apply `P` to every column of `w` (`w` is `n × sites`, column `s` is the
/// CPV of site `s`), writing into `out`.
///
/// # Panics
/// Panics on shape mismatches.
// check: hot dense P·W reconstruction entry
pub fn apply_dense(strategy: CpvStrategy, p: &Mat, w: &Mat, out: &mut Mat) {
    apply_dense_with(strategy, p, w, out, &mut CpvScratch::new());
}

/// Like [`apply_dense`] but reusing caller-owned scratch buffers, so the
/// hot path performs no per-call allocation. Results are bit-identical to
/// [`apply_dense`]: every column is computed independently with the same
/// kernel, so the output does not depend on how the site dimension is
/// blocked.
///
/// # Panics
/// Panics on shape mismatches.
// check: hot dense P·W reconstruction, scratch-reusing form
// check: allow(panic-free-hot-path) shape asserts are the entry contract; scratch.ensure(n) guarantees col/res hold n
pub fn apply_dense_with(
    strategy: CpvStrategy,
    p: &Mat,
    w: &Mat,
    out: &mut Mat,
    scratch: &mut CpvScratch,
) {
    let n = p.rows();
    assert_eq!(p.cols(), n);
    assert_eq!(w.rows(), n, "apply_dense: W rows mismatch");
    assert_eq!((out.rows(), out.cols()), (w.rows(), w.cols()));
    match strategy {
        CpvStrategy::NaivePerSite => {
            scratch.ensure(n);
            let sites = w.cols();
            for s in 0..sites {
                for i in 0..n {
                    scratch.col[i] = w[(i, s)];
                }
                naive::matvec(p, &scratch.col[..n], &mut scratch.res[..n]);
                for i in 0..n {
                    out[(i, s)] = scratch.res[i];
                }
            }
        }
        CpvStrategy::PerSiteGemv => {
            scratch.ensure(n);
            let sites = w.cols();
            for s in 0..sites {
                for i in 0..n {
                    scratch.col[i] = w[(i, s)];
                }
                gemv(1.0, p, &scratch.col[..n], 0.0, &mut scratch.res[..n]);
                for i in 0..n {
                    out[(i, s)] = scratch.res[i];
                }
            }
        }
        CpvStrategy::BundledGemm => {
            gemm(1.0, p, Transpose::No, w, Transpose::No, 0.0, out);
        }
        CpvStrategy::SymmetricSymv => {
            panic!("SymmetricSymv needs a SymTransition; use SymTransition::apply_dense")
        }
    }
}

/// The Eq. 12 representation: a symmetric matrix `M = Ŷ·Ŷᵀ` and the
/// frequencies π such that `e^{Qt}·w = M·(Π·w)`.
#[derive(Debug, Clone)]
pub struct SymTransition {
    m: Mat,
    pi: Vec<f64>,
}

impl SymTransition {
    /// Wrap a precomputed symmetric matrix and frequency vector.
    ///
    /// # Panics
    /// Panics if shapes disagree.
    // check: allow(panic-free-hot-path) constructor shape contract, runs once per eigendecomposition, outside the per-site loop
    pub fn new(m: Mat, pi: Vec<f64>) -> SymTransition {
        assert!(m.is_square());
        assert_eq!(m.rows(), pi.len());
        SymTransition { m, pi }
    }

    /// The symmetric factor `M`.
    pub fn matrix(&self) -> &Mat {
        &self.m
    }

    /// The equilibrium frequencies π paired with `M`.
    pub fn pi(&self) -> &[f64] {
        &self.pi
    }

    /// Apply to a single CPV: `w' = M·(Π·w)` via `symv`.
    // check: hot symmetric single-CPV apply (Eq. 10 path)
    // check: allow(panic-free-hot-path) length assert is the entry contract; pi/w indexed below it
    pub fn apply(&self, w: &[f64]) -> Vec<f64> {
        let n = self.pi.len();
        assert_eq!(w.len(), n);
        let scaled: Vec<f64> = w.iter().zip(&self.pi).map(|(wi, p)| wi * p).collect();
        let mut out = vec![0.0; n];
        symv(1.0, &self.m, &scaled, 0.0, &mut out);
        out
    }

    /// Apply to every column of a dense `n × sites` CPV block.
    // check: hot symmetric dense apply entry
    pub fn apply_dense(&self, w: &Mat, out: &mut Mat) {
        self.apply_dense_with(w, out, &mut CpvScratch::new());
    }

    /// Like [`SymTransition::apply_dense`] with caller-owned scratch
    /// buffers (no per-call allocation; bit-identical results).
    // check: hot symmetric dense apply, scratch-reusing form
    // check: allow(panic-free-hot-path) shape asserts are the entry contract; scratch.ensure(n) sizes col/res
    pub fn apply_dense_with(&self, w: &Mat, out: &mut Mat, scratch: &mut CpvScratch) {
        let n = self.pi.len();
        assert_eq!(w.rows(), n);
        assert_eq!((out.rows(), out.cols()), (w.rows(), w.cols()));
        scratch.ensure(n);
        let sites = w.cols();
        for s in 0..sites {
            for i in 0..n {
                scratch.col[i] = w[(i, s)] * self.pi[i];
            }
            symv(1.0, &self.m, &scratch.col[..n], 0.0, &mut scratch.res[..n]);
            for i in 0..n {
                out[(i, s)] = scratch.res[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_p() -> Mat {
        // A small row-stochastic matrix.
        Mat::from_rows(&[&[0.7, 0.2, 0.1], &[0.15, 0.8, 0.05], &[0.1, 0.3, 0.6]])
    }

    fn toy_w() -> Mat {
        Mat::from_rows(&[&[1.0, 0.0, 0.5], &[0.0, 1.0, 0.25], &[0.0, 0.0, 0.25]])
    }

    #[test]
    fn strategies_agree() {
        let p = toy_p();
        let w = toy_w();
        let mut naive_out = Mat::zeros(3, 3);
        let mut gemv_out = Mat::zeros(3, 3);
        let mut gemm_out = Mat::zeros(3, 3);
        apply_dense(CpvStrategy::NaivePerSite, &p, &w, &mut naive_out);
        apply_dense(CpvStrategy::PerSiteGemv, &p, &w, &mut gemv_out);
        apply_dense(CpvStrategy::BundledGemm, &p, &w, &mut gemm_out);
        assert!(naive_out.approx_eq(&gemv_out, 1e-14));
        assert!(naive_out.approx_eq(&gemm_out, 1e-14));
    }

    #[test]
    fn known_column_result() {
        let p = toy_p();
        let w = toy_w();
        let mut out = Mat::zeros(3, 3);
        apply_dense(CpvStrategy::BundledGemm, &p, &w, &mut out);
        // Column 0 of W is e₀ → column 0 of out is column 0 of P.
        for i in 0..3 {
            assert!((out[(i, 0)] - p[(i, 0)]).abs() < 1e-15);
        }
    }

    #[test]
    fn sym_transition_apply_matches_definition() {
        // Symmetric M and π chosen arbitrarily; apply must equal M·diag(π)·w.
        let mut m = Mat::from_rows(&[&[2.0, 0.5, 0.1], &[0.5, 1.5, 0.3], &[0.1, 0.3, 1.0]]);
        m.symmetrize();
        let pi = vec![0.2, 0.3, 0.5];
        let st = SymTransition::new(m.clone(), pi.clone());
        let w = vec![1.0, -2.0, 0.5];
        let got = st.apply(&w);
        let scaled: Vec<f64> = w.iter().zip(&pi).map(|(a, b)| a * b).collect();
        let expect = m.mul_vec(&scaled);
        for i in 0..3 {
            assert!((got[i] - expect[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn sym_transition_dense_matches_single() {
        let mut m = Mat::from_rows(&[&[2.0, 0.5], &[0.5, 1.5]]);
        m.symmetrize();
        let st = SymTransition::new(m, vec![0.4, 0.6]);
        let w = Mat::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]);
        let mut out = Mat::zeros(2, 2);
        st.apply_dense(&w, &mut out);
        for s in 0..2 {
            let col: Vec<f64> = (0..2).map(|i| w[(i, s)]).collect();
            let single = st.apply(&col);
            for i in 0..2 {
                assert!((out[(i, s)] - single[i]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn blocked_application_is_bit_identical() {
        // The determinism contract of the parallel engine: applying P to a
        // column sub-block produces exactly the bits of the corresponding
        // columns of the full-width application, for every strategy.
        let p = toy_p();
        let w = toy_w();
        for strategy in [
            CpvStrategy::NaivePerSite,
            CpvStrategy::PerSiteGemv,
            CpvStrategy::BundledGemm,
        ] {
            let mut full = Mat::zeros(3, 3);
            apply_dense(strategy, &p, &w, &mut full);
            let mut scratch = CpvScratch::new();
            for s in 0..3 {
                let wcol = Mat::from_fn(3, 1, |i, _| w[(i, s)]);
                let mut out = Mat::zeros(3, 1);
                apply_dense_with(strategy, &p, &wcol, &mut out, &mut scratch);
                for i in 0..3 {
                    assert_eq!(
                        out[(i, 0)].to_bits(),
                        full[(i, s)].to_bits(),
                        "{strategy:?} col {s} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_is_grow_only_and_reusable_across_dims() {
        let mut scratch = CpvScratch::new();
        scratch.ensure(61);
        let cap = scratch.col.capacity();
        scratch.ensure(3);
        assert_eq!(scratch.col.len(), 61, "ensure must not shrink");
        scratch.ensure(61);
        assert_eq!(scratch.col.capacity(), cap, "regrowth would thrash");

        // A scratch that served a larger dimension still computes correct
        // results for a smaller one (call sites slice to n).
        let p = toy_p();
        let w = toy_w();
        let mut fresh = Mat::zeros(3, 3);
        apply_dense(CpvStrategy::PerSiteGemv, &p, &w, &mut fresh);
        let mut reused = Mat::zeros(3, 3);
        apply_dense_with(CpvStrategy::PerSiteGemv, &p, &w, &mut reused, &mut scratch);
        for i in 0..3 {
            for s in 0..3 {
                assert_eq!(reused[(i, s)].to_bits(), fresh[(i, s)].to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "SymmetricSymv")]
    fn dense_symmetric_panics_without_transition() {
        let p = toy_p();
        let w = toy_w();
        let mut out = Mat::zeros(3, 3);
        apply_dense(CpvStrategy::SymmetricSymv, &p, &w, &mut out);
    }
}
