//! Property-based tests for the matrix-exponential layer against the
//! Taylor scaling-and-squaring oracle, over random codon-model inputs.

use proptest::prelude::*;
use slim_bio::{GeneticCode, N_CODONS};
use slim_expm::{expm_taylor, EigenSystem};
use slim_linalg::EigenMethod;
use slim_model::{build_rate_matrix, ScalePolicy};

fn pi_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.2f64..5.0, N_CODONS).prop_map(|raw| {
        let s: f64 = raw.iter().sum();
        raw.into_iter().map(|v| v / s).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// The eigendecomposition path agrees with the Taylor oracle across
    /// random (κ, ω, π, t).
    #[test]
    fn eigen_expm_matches_taylor(
        kappa in 0.5f64..6.0,
        omega in 0.05f64..4.0,
        pi in pi_strategy(),
        t in 0.01f64..1.5,
    ) {
        let code = GeneticCode::universal();
        let rm = build_rate_matrix(&code, kappa, omega, &pi, ScalePolicy::PerClass);
        let es = EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).unwrap();
        let p = es.transition_matrix_eq10(t);
        let mut qt = rm.q.clone();
        qt.scale(t);
        let oracle = expm_taylor(&qt);
        prop_assert!(
            p.approx_eq(&oracle, 1e-8),
            "max diff {} at t={t}",
            p.max_abs_diff(&oracle)
        );
    }

    /// The Eq. 12 symmetric representation applies identically to the
    /// dense matrix for arbitrary CPVs.
    #[test]
    fn symmetric_apply_matches_dense(
        kappa in 0.5f64..6.0,
        omega in 0.05f64..4.0,
        pi in pi_strategy(),
        t in 0.01f64..1.5,
        w in proptest::collection::vec(0.0f64..1.0, N_CODONS),
    ) {
        let code = GeneticCode::universal();
        let rm = build_rate_matrix(&code, kappa, omega, &pi, ScalePolicy::PerClass);
        let es = EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).unwrap();
        let dense = es.transition_matrix_eq10(t).mul_vec(&w);
        let sym = es.symmetric_transition(t).apply(&w);
        for (a, b) in dense.iter().zip(&sym) {
            prop_assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }
}
