//! Sanitizer coverage (runs only with `--features sanitize`):
//!
//! 1. Property test — random valid (κ, ω, π, t) across both genetic
//!    codes flow through rate-matrix construction, eigendecomposition,
//!    and every P(t) reconstruction path without tripping an invariant.
//! 2. Deliberate corruption — an injected NaN in a CPV and a
//!    de-normalized Q row (and friends) must each fire the matching
//!    tripwire, and the panic must carry the caller's context.
#![cfg(feature = "sanitize")]

use proptest::prelude::*;
use slim_bio::GeneticCode;
use slim_expm::EigenSystem;
use slim_linalg::{sanitize, EigenMethod};
use slim_model::{build_rate_matrix, ScalePolicy};

fn pi_for(n: usize, raw: &[f64]) -> Vec<f64> {
    let mut pi: Vec<f64> = (0..n).map(|i| 0.2 + raw[i % raw.len()]).collect();
    let s: f64 = pi.iter().sum();
    for p in &mut pi {
        *p /= s;
    }
    pi
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn random_valid_inputs_trip_no_invariant(
        kappa in 0.5f64..15.0,
        omega in 0.01f64..10.0,
        t in 1e-4f64..20.0,
        raw in proptest::collection::vec(0.0f64..4.0, 16),
        mito in 0..2usize,
    ) {
        let code = if mito == 1 {
            GeneticCode::vertebrate_mitochondrial()
        } else {
            GeneticCode::universal()
        };
        // build_rate_matrix runs check_generator_rows internally.
        let rm = build_rate_matrix(&code, kappa, omega, &pi_for(code.n_sense(), &raw), ScalePolicy::PerClass);
        // from_rate_matrix runs check_generator_spectrum internally.
        let es = EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).unwrap();
        // Every reconstruction path runs its row-stochasticity tripwire.
        let _ = es.transition_matrix_eq9_naive(t);
        let _ = es.transition_matrix_eq9(t);
        let _ = es.transition_matrix_eq10(t);
        let _ = es.symmetric_transition(t);
    }
}

/// The panic message of a tripwire, or None if `f` did not panic.
fn trip_message(f: impl FnOnce() + std::panic::UnwindSafe) -> Option<String> {
    // The panic hook is process-global; serialize the swap so the
    // corruption tests can run on parallel test threads.
    static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::panic::take_hook();
    // Silence the expected panic's default stderr backtrace chatter.
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(f);
    std::panic::set_hook(prev);
    drop(guard);
    match result {
        Ok(()) => None,
        Err(e) => Some(
            e.downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".to_string()),
        ),
    }
}

fn valid_system() -> slim_model::RateMatrix {
    let code = GeneticCode::universal();
    let raw: Vec<f64> = (0..16).map(|i| (i % 7) as f64 * 0.3).collect();
    build_rate_matrix(
        &code,
        2.0,
        0.5,
        &pi_for(code.n_sense(), &raw),
        ScalePolicy::PerClass,
    )
}

#[test]
fn denormalized_q_row_fires_with_context() {
    let mut rm = valid_system();
    rm.q[(3, 3)] += 0.25; // row 3 no longer sums to zero
    let msg = trip_message(move || {
        sanitize::check_generator_rows(&rm.q, 1e-9, || "corruption test (ω class fg=2)".into())
    })
    .expect("tripwire must fire");
    assert!(msg.contains("generator row 3"), "{msg}");
    assert!(msg.contains("corruption test (ω class fg=2)"), "{msg}");
}

#[test]
fn nan_cpv_fires_with_context() {
    let mut cpv = vec![0.25f64; 61];
    cpv[17] = f64::NAN;
    let msg = trip_message(move || {
        sanitize::check_finite_nonneg("CPV", &cpv, || {
            "pruning node 5 (ω classes bg=0 fg=2), pattern block [8, 16)".into()
        })
    })
    .expect("tripwire must fire");
    assert!(msg.contains("CPV[17]"), "{msg}");
    assert!(msg.contains("node 5"), "{msg}");
    assert!(msg.contains("pattern block [8, 16)"), "{msg}");
}

#[test]
fn negative_cpv_fires() {
    let mut cpv = vec![0.25f64; 61];
    cpv[2] = -1e-3;
    let msg = trip_message(move || sanitize::check_finite_nonneg("CPV", &cpv, || "node 1".into()))
        .expect("tripwire must fire");
    assert!(msg.contains("CPV[2]"), "{msg}");
}

#[test]
fn missing_zero_eigenvalue_fires() {
    let rm = valid_system();
    let es = EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).unwrap();
    let mut values = es.eigen.values.clone();
    // Eigenvalues are ascending, so the stationary ~0 mode is last;
    // losing it means the decomposition no longer spans π.
    let last = values.len() - 1;
    values[last] = -0.1;
    let msg = trip_message(move || {
        sanitize::check_generator_spectrum(&values, 1e-11, || "branch fg, ω2=4.0".into())
    })
    .expect("tripwire must fire");
    assert!(msg.contains("stationary mode is missing"), "{msg}");
    assert!(msg.contains("branch fg"), "{msg}");
}

#[test]
fn positive_eigenvalue_fires() {
    let rm = valid_system();
    let es = EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).unwrap();
    let mut values = es.eigen.values.clone();
    values[0] = 0.5;
    let msg = trip_message(move || {
        sanitize::check_generator_spectrum(&values, 1e-11, || "branch bg".into())
    })
    .expect("tripwire must fire");
    assert!(msg.contains("negative semidefinite"), "{msg}");
}

#[test]
fn super_stochastic_transition_fires() {
    let rm = valid_system();
    let es = EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).unwrap();
    let mut p = es.transition_matrix_eq10(0.3);
    p[(7, 9)] = 1.5;
    let msg = trip_message(move || {
        sanitize::check_row_stochastic(&p, 1e-7, 1e-7, || "branch t=0.3".into())
    })
    .expect("tripwire must fire");
    assert!(msg.contains("P[7,9]"), "{msg}");
    assert!(msg.contains("t=0.3"), "{msg}");
}

#[test]
fn nonfinite_lnl_fires_and_neg_inf_does_not() {
    assert!(
        trip_message(|| sanitize::check_log_value("lnL", f64::NEG_INFINITY, || "x".into()))
            .is_none()
    );
    let msg = trip_message(|| sanitize::check_log_value("lnL", f64::NAN, || "pattern 12".into()))
        .expect("NaN lnL must fire");
    assert!(msg.contains("pattern 12"), "{msg}");
}
