//! Forced-dispatch bit-identity for every CPV strategy.
//!
//! The engine's determinism contract says the SIMD backend is invisible:
//! `SLIMCODEML_SIMD=scalar` and `=avx2` (or auto) must produce the same
//! bits through every strategy of [`slim_expm::cpv`]. Dimensions straddle
//! the 4-lane boundary; 61 is the codon order.

use proptest::prelude::*;
use slim_expm::{cpv, CpvScratch, CpvStrategy, EigenSystem, SymTransition};
use slim_linalg::simd::{self, SimdMode};
use slim_linalg::{EigenMethod, Mat};

const LANE_DIMS: [usize; 5] = [1, 60, 61, 64, 65];

fn dim_strategy() -> impl Strategy<Value = usize> {
    (0usize..LANE_DIMS.len()).prop_map(|i| LANE_DIMS[i])
}

fn rng_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    })
}

fn mat_bits(m: &Mat) -> Vec<u64> {
    (0..m.rows())
        .flat_map(|i| m.row(i).iter().map(|v| v.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// The three dense strategies: forced-scalar vs forced-AVX2 bits.
    #[test]
    fn dense_strategies_bit_identical_across_backends(
        n in dim_strategy(),
        sites in 1usize..9,
        seed in 0u64..500,
    ) {
        let p = rng_mat(n, n, seed);
        let w = rng_mat(n, sites, seed ^ 0xACE5);
        for strategy in [
            CpvStrategy::NaivePerSite,
            CpvStrategy::PerSiteGemv,
            CpvStrategy::BundledGemm,
        ] {
            let run = |mode: SimdMode| {
                simd::with_forced(mode, || {
                    let mut out = Mat::zeros(n, sites);
                    cpv::apply_dense_with(strategy, &p, &w, &mut out, &mut CpvScratch::new());
                    mat_bits(&out)
                })
            };
            prop_assert_eq!(run(SimdMode::ForceScalar), run(SimdMode::ForceAvx2));
        }
    }

    /// Eq. 12: `symv` on a synthetic symmetric factor, both backends.
    #[test]
    fn symmetric_strategy_bit_identical_across_backends(
        n in dim_strategy(),
        sites in 1usize..9,
        seed in 0u64..500,
    ) {
        let mut m = rng_mat(n, n, seed);
        m.symmetrize();
        let pi: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 7) % 5) as f64 / 5.0).collect();
        let st = SymTransition::new(m, pi);
        let w = rng_mat(n, sites, seed ^ 0xE125);
        let run = |mode: SimdMode| {
            simd::with_forced(mode, || {
                let mut out = Mat::zeros(n, sites);
                st.apply_dense_with(&w, &mut out, &mut CpvScratch::new());
                mat_bits(&out)
            })
        };
        prop_assert_eq!(run(SimdMode::ForceScalar), run(SimdMode::ForceAvx2));
    }
}

/// End to end at the codon order: reconstructing `P(t)` (syrk + diagonal
/// scalings) from one decomposition gives the same bits under forced
/// scalar and forced AVX2 dispatch.
#[test]
fn transition_reconstruction_bit_identical_across_backends() {
    let code = slim_bio::GeneticCode::universal();
    let mut pi: Vec<f64> = (0..61).map(|i| 1.0 + ((i * 5) % 11) as f64).collect();
    let s: f64 = pi.iter().sum();
    for p in &mut pi {
        *p /= s;
    }
    let rm = slim_model::build_rate_matrix(&code, 2.3, 0.7, &pi, slim_model::ScalePolicy::PerClass);
    let es = EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).unwrap();
    for t in [0.01, 0.4, 2.0] {
        let scalar = simd::with_forced(SimdMode::ForceScalar, || es.transition_matrix_eq10(t));
        let fast = simd::with_forced(SimdMode::ForceAvx2, || es.transition_matrix_eq10(t));
        assert_eq!(mat_bits(&scalar), mat_bits(&fast), "t={t}");
        let sym_s = simd::with_forced(SimdMode::ForceScalar, || es.symmetric_transition(t));
        let sym_f = simd::with_forced(SimdMode::ForceAvx2, || es.symmetric_transition(t));
        assert_eq!(mat_bits(sym_s.matrix()), mat_bits(sym_f.matrix()), "t={t}");
    }
}
