//! Property test: manifest parse ∘ canonical_json is the identity on
//! validated manifests, and the fingerprint is stable under the trip.

use proptest::prelude::*;
use slim_batch::{BatchManifest, BranchRef, BranchSpec, ManifestEntry};
use slim_bio::FreqModel;
use slim_core::{Backend, GradMode};

const ID_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";
const BACKENDS: [Backend; 5] = [
    Backend::CodeMlStyle,
    Backend::Slim,
    Backend::SlimPlus,
    Backend::SlimSymmetric,
    Backend::SlimParallel,
];
const FREQS: [FreqModel; 4] = [
    FreqModel::Equal,
    FreqModel::F1x4,
    FreqModel::F3x4,
    FreqModel::F61,
];

fn ident() -> impl Strategy<Value = String> {
    proptest::collection::vec(0..ID_ALPHABET.len(), 1..12)
        .prop_map(|ix| ix.into_iter().map(|i| ID_ALPHABET[i] as char).collect())
}

fn branch_ref() -> impl Strategy<Value = BranchRef> {
    (0..2usize, 0..64usize, ident()).prop_map(|(kind, node, name)| {
        if kind == 0 {
            BranchRef::Node(node)
        } else {
            BranchRef::Name(name)
        }
    })
}

fn branches() -> impl Strategy<Value = BranchSpec> {
    (0..3usize, proptest::collection::vec(branch_ref(), 1..5)).prop_map(|(kind, refs)| {
        if kind == 0 {
            BranchSpec::All
        } else {
            BranchSpec::List(refs)
        }
    })
}

fn entry() -> impl Strategy<Value = ManifestEntry> {
    let paths = (ident(), ident());
    let model = (0..BACKENDS.len(), 0..FREQS.len(), 0..2usize, 0..2usize);
    // Seeds stay below 2^53 so the value survives any f64-based JSON
    // number representation; the manifest schema allows the full range.
    let numbers = (
        0..9_007_199_254_740_992u64,
        1..10_000u64,
        0.0..2.0f64,
        (0..2usize, 1e-6..5.0f64),
    );
    (ident(), paths, branches(), model, numbers).prop_map(
        |(
            id,
            (alignment, tree),
            branches,
            (b, f, mito, grad),
            (seed, max_it, jitter, (has_ibl, ibl)),
        )| {
            ManifestEntry {
                id,
                alignment,
                tree,
                branches,
                backend: BACKENDS[b],
                freq: FREQS[f],
                mito: mito == 1,
                grad: if grad == 0 {
                    GradMode::Forward
                } else {
                    GradMode::Central
                },
                seed,
                max_iterations: max_it as usize,
                jitter,
                initial_branch_length: (has_ibl == 1).then_some(ibl),
            }
        },
    )
}

proptest! {
    #[test]
    fn canonical_json_roundtrips(entries in proptest::collection::vec(entry(), 1..6)) {
        // Gene ids must be unique for the manifest to validate; suffix
        // each with its index rather than rejecting collisions.
        let entries: Vec<ManifestEntry> = entries
            .into_iter()
            .enumerate()
            .map(|(i, mut e)| {
                e.id = format!("{}_{i}", e.id);
                e
            })
            .collect();
        let manifest = BatchManifest { version: 1, entries };
        let canon = manifest.canonical_json();
        let reparsed = BatchManifest::parse(&canon)
            .map_err(|e| TestCaseError::fail(format!("canonical form must reparse: {e}\n{canon}")))?;
        prop_assert_eq!(&reparsed, &manifest);
        prop_assert_eq!(reparsed.canonical_json(), canon);
        prop_assert_eq!(reparsed.fingerprint(), manifest.fingerprint());
    }
}
