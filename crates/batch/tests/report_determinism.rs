//! Byte-identity regression for the aggregation/journal output paths:
//! whatever order workers finish in (and whether records were computed
//! fresh or recovered from the journal), the TSV and deterministic JSON
//! renderings must be byte-for-byte identical. This is the output-side
//! half of the slim-check `det-hash-iter` contract — those paths are
//! kept hash-free, and this test pins the ordering they rely on.

use slim_batch::scheduler::JobFailure;
use slim_batch::{BatchRecord, BatchReport, JobOutcome};

fn outcome(seed: u64) -> JobOutcome {
    let f = seed as f64;
    JobOutcome {
        lnl0: -1000.0 - f * 3.25,
        lnl1: -998.5 - f * 3.125,
        stat: 3.0 + f * 0.25,
        p_value: 0.05 / (1.0 + f),
        kappa: 2.0 + f * 0.0625,
        omega0: 0.1 + f * 0.015625,
        omega2: 2.5 + f,
        p0: 0.7,
        p1: 0.2,
        n_pos_sites: (seed % 5) as usize,
        iterations: 40 + seed as usize,
        cache_hits: seed * 7,
        cache_misses: seed + 1,
    }
}

fn record(id: usize, from_journal: bool) -> BatchRecord {
    let outcome = if id % 4 == 3 {
        Err(JobFailure {
            error: format!("fit diverged on job {id}\nwith a second line"),
            recoverable: true,
            timed_out: id % 8 == 7,
            trace_tail: Vec::new(),
        })
    } else {
        Ok(outcome(id as u64))
    };
    BatchRecord {
        id,
        key: format!("gene{:03}:fg", id),
        label: format!("gene{:03}:human", id),
        attempts: 1 + id % 3,
        // Wall-clock noise: must never reach deterministic output.
        seconds: 0.5 + (id as f64) * 0.777,
        outcome,
        from_journal,
    }
}

/// Deterministic order scrambles standing in for worker-completion
/// nondeterminism.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let forward: Vec<usize> = (0..n).collect();
    let mut reverse = forward.clone();
    reverse.reverse();
    // A fixed LCG shuffle (no rand dependency in this test).
    let mut shuffled = forward.clone();
    let mut state = 0x2545F4914F6CDD1Du64;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        shuffled.swap(i, j);
    }
    // Odd IDs first: the shape a resume produces when journaled jobs are
    // merged with freshly computed ones.
    let mut interleaved: Vec<usize> = (0..n).filter(|i| i % 2 == 1).collect();
    interleaved.extend((0..n).filter(|i| i % 2 == 0));
    vec![forward, reverse, shuffled, interleaved]
}

#[test]
fn tsv_and_json_are_byte_identical_across_completion_orders() {
    let n = 17;
    let reference = BatchReport::from_records((0..n).map(|i| record(i, false)).collect(), n, 12.5);
    let ref_tsv = reference.to_tsv();
    let ref_json = reference.to_json(false);
    assert!(ref_tsv.contains("gene003"), "failure rows present");

    for (pi, perm) in permutations(n).into_iter().enumerate() {
        // Different completion order AND different wall-clock noise.
        let records: Vec<BatchRecord> = perm
            .iter()
            .map(|&i| {
                let mut r = record(i, false);
                r.seconds += pi as f64 * 3.3;
                r
            })
            .collect();
        let report = BatchReport::from_records(records, n, 99.0 + pi as f64);
        assert_eq!(report.to_tsv().as_bytes(), ref_tsv.as_bytes(), "perm {pi}");
        assert_eq!(
            report.to_json(false).as_bytes(),
            ref_json.as_bytes(),
            "perm {pi}"
        );
    }
}

#[test]
fn journal_recovery_does_not_change_deterministic_output() {
    // A resumed run recovers some records from the journal; only the
    // timing-inclusive renderings may differ.
    let n = 9;
    let fresh = BatchReport::from_records((0..n).map(|i| record(i, false)).collect(), n, 1.0);
    let resumed =
        BatchReport::from_records((0..n).map(|i| record(i, i % 2 == 0)).collect(), n, 2.0);
    assert_eq!(fresh.to_tsv().as_bytes(), resumed.to_tsv().as_bytes());
    assert_eq!(
        fresh.to_json(false).as_bytes(),
        resumed.to_json(false).as_bytes()
    );
    // Sanity: the timing-inclusive JSON is allowed to (and here does)
    // differ, so the equality above is not vacuous.
    assert_ne!(fresh.to_json(true), resumed.to_json(true));
}
