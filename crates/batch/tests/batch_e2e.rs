//! End-to-end tests for the batch subsystem: determinism across worker
//! counts, checkpoint/resume equivalence, and fault isolation.

use slim_batch::{
    run_batch, run_batch_with, run_pool, BatchManifest, JobError, JobInput, RunConfig,
    SchedulerConfig,
};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Third codon of taxon C, varied per gene so genes are distinct
/// datasets (all Lys/Asn — no stops).
const VARIANTS: [&str; 4] = ["AAA", "AAC", "AAG", "AAT"];

fn workspace(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slim_batch_e2e_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_gene(dir: &Path, stem: &str, variant: usize) {
    let v = VARIANTS[variant % VARIANTS.len()];
    std::fs::write(
        dir.join(format!("{stem}.fasta")),
        format!(">A\nATGCCCAAATGGTTT\n>B\nATGCCAAAATGGTTC\n>C\nATGCCC{v}TGGTTT\n"),
    )
    .unwrap();
}

/// A 4-gene × all-branches manifest: the 3-taxon tree has 4 non-root
/// nodes, so this expands to 16 jobs.
fn write_manifest_16(dir: &Path) -> PathBuf {
    std::fs::write(dir.join("tree.nwk"), "((A:0.1,B:0.2):0.05,C:0.3);").unwrap();
    let mut genes = Vec::new();
    for i in 0..4 {
        write_gene(dir, &format!("g{i}"), i);
        genes.push(format!(
            r#"{{"id":"g{i}","alignment":"g{i}.fasta","tree":"tree.nwk","branches":"all","backend":"slim","max_iterations":25,"seed":{}}}"#,
            11 + i
        ));
    }
    let path = dir.join("manifest.json");
    std::fs::write(
        &path,
        format!(r#"{{"version":1,"genes":[{}]}}"#, genes.join(",")),
    )
    .unwrap();
    path
}

fn config(dir: &Path, journal: &str, workers: usize) -> RunConfig {
    RunConfig {
        workers,
        retries: 1,
        journal_path: dir.join(journal),
        backoff: Duration::from_millis(1),
        ..RunConfig::default()
    }
}

#[test]
fn worker_count_does_not_change_output_and_resume_matches_uninterrupted() {
    let dir = workspace("determinism");
    let manifest = write_manifest_16(&dir);

    let serial = run_batch(&manifest, &config(&dir, "j1.jsonl", 1)).unwrap();
    assert_eq!(serial.summary.done, 16, "all 16 jobs fit");
    assert_eq!(serial.summary.failed, 0);

    let pooled = run_batch(&manifest, &config(&dir, "j4.jsonl", 4)).unwrap();
    assert_eq!(
        serial.to_tsv(),
        pooled.to_tsv(),
        "TSV must be byte-identical at 1 vs 4 workers"
    );
    assert_eq!(
        serial.to_json(false),
        pooled.to_json(false),
        "timing-free JSON must be byte-identical at 1 vs 4 workers"
    );

    // Interrupt a 2-worker run after a few completions: the cancel flag
    // is cooperative, so in-flight jobs finish and the rest never start.
    let interrupted_cfg = config(&dir, "resume.jsonl", 2);
    let cancel = interrupted_cfg.cancel.clone();
    let mut seen = 0usize;
    let partial = run_batch_with(&manifest, &interrupted_cfg, |_rec| {
        seen += 1;
        if seen >= 5 {
            cancel.cancel();
        }
    })
    .unwrap();
    assert!(
        partial.summary.cancelled > 0,
        "interruption left work undone ({} records)",
        partial.records.len()
    );
    assert!(partial.records.len() >= 5);

    // Resume from the journal: the merged output must match the
    // uninterrupted run exactly.
    let resumed_cfg = RunConfig {
        resume: true,
        ..config(&dir, "resume.jsonl", 2)
    };
    let resumed = run_batch(&manifest, &resumed_cfg).unwrap();
    assert_eq!(resumed.summary.done, 16);
    assert_eq!(
        resumed.summary.from_journal,
        partial.records.len(),
        "every journaled record is reused, none recomputed"
    );
    assert_eq!(
        resumed.to_tsv(),
        serial.to_tsv(),
        "resumed output must be byte-identical to the uninterrupted run"
    );
    assert_eq!(resumed.to_json(false), serial.to_json(false));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_journal_from_a_different_manifest() {
    let dir = workspace("fingerprint");
    let manifest = write_manifest_16(&dir);
    let cfg = config(&dir, "j.jsonl", 1);

    // Seed a journal with the original manifest (cancel immediately so
    // this stays cheap).
    let cancel = cfg.cancel.clone();
    run_batch_with(&manifest, &cfg, |_| cancel.cancel()).unwrap();

    // Edit the manifest (different seed ⇒ different fingerprint).
    let text = std::fs::read_to_string(&manifest).unwrap();
    std::fs::write(&manifest, text.replace("\"seed\":11", "\"seed\":99")).unwrap();

    let resumed_cfg = RunConfig {
        resume: true,
        ..config(&dir, "j.jsonl", 1)
    };
    let err = run_batch(&manifest, &resumed_cfg).unwrap_err().to_string();
    assert!(err.contains("different manifest"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_inputs_are_quarantined_while_siblings_complete() {
    let dir = workspace("faults");
    std::fs::write(dir.join("tree.nwk"), "((A:0.1,B:0.2):0.05,C:0.3);").unwrap();
    write_gene(&dir, "good", 0);
    // Not FASTA, not PHYLIP, not NEXUS: fails to load.
    std::fs::write(
        dir.join("corrupt.fasta"),
        "@@ this is not an alignment @@\n",
    )
    .unwrap();
    // Valid FASTA whose taxa don't match the tree: loads, then every fit
    // fails with an input error.
    std::fs::write(
        dir.join("mismatch.fasta"),
        ">D\nATGCCC\n>E\nATGCCA\n>F\nATGCCC\n",
    )
    .unwrap();
    let manifest = dir.join("manifest.json");
    std::fs::write(
        &manifest,
        r#"{"version":1,"genes":[
            {"id":"good","alignment":"good.fasta","tree":"tree.nwk","max_iterations":25},
            {"id":"corrupt","alignment":"corrupt.fasta","tree":"tree.nwk","max_iterations":25},
            {"id":"mismatch","alignment":"mismatch.fasta","tree":"tree.nwk","max_iterations":25}
        ]}"#,
    )
    .unwrap();

    let report = run_batch(&manifest, &config(&dir, "j.jsonl", 2)).unwrap();
    assert_eq!(report.summary.total, 12, "3 genes × 4 branches");
    assert_eq!(report.summary.done, 4, "the good gene completes in full");
    assert_eq!(report.summary.failed, 8);
    for rec in &report.records {
        let gene = rec.key.split(':').next().unwrap();
        match gene {
            "good" => assert!(rec.outcome.is_ok(), "{}", rec.key),
            "corrupt" => {
                let f = rec.outcome.as_ref().unwrap_err();
                assert!(f.error.contains("alignment:"), "{}", f.error);
                assert_eq!(rec.attempts, 1, "poisoned jobs are fatal, never retried");
            }
            "mismatch" => {
                let f = rec.outcome.as_ref().unwrap_err();
                assert!(f.error.contains("input error"), "{}", f.error);
                assert_eq!(rec.attempts, 1, "input errors are fatal, never retried");
            }
            other => panic!("unexpected gene {other}"),
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recoverable_failures_retry_to_the_limit_then_quarantine() {
    let dir = workspace("retries");
    std::fs::write(dir.join("tree.nwk"), "((A:0.1,B:0.2):0.05,C:0.3);").unwrap();
    write_gene(&dir, "g", 1);
    let text = r#"{"version":1,"genes":[
        {"id":"g","alignment":"g.fasta","tree":"tree.nwk","max_iterations":25}
    ]}"#;
    let jobs = BatchManifest::parse(text).unwrap().expand(&dir);
    assert_eq!(jobs.len(), 4);
    assert!(jobs
        .iter()
        .all(|j| matches!(j.payload.input, JobInput::Ready { .. })));
    let doomed_key = jobs[1].key.clone();

    // Force one job to fail recoverably (a stand-in for a non-finite
    // likelihood); siblings run the real fit.
    let sched = SchedulerConfig {
        workers: 2,
        retries: 2,
        backoff: Duration::from_millis(1),
        ..SchedulerConfig::default()
    };
    let records = run_pool(
        jobs,
        &sched,
        |job, attempt| {
            if job.key == doomed_key {
                Err(JobError::recoverable("non-finite log-likelihood (forced)"))
            } else {
                slim_batch::run_analysis_job(job, attempt)
            }
        },
        |_| {},
    );
    assert_eq!(records.len(), 4);
    for rec in &records {
        if rec.key == doomed_key {
            let f = rec.outcome.as_ref().unwrap_err();
            assert_eq!(rec.attempts, 3, "1 initial + 2 retries");
            assert!(f.recoverable);
            assert!(f.error.contains("non-finite"));
        } else {
            assert!(rec.outcome.is_ok(), "sibling {} must complete", rec.key);
            assert_eq!(rec.attempts, 1);
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}
