//! JSON plumbing for the batch layer.
//!
//! Reading uses `serde_json::Value` through its accessor API only.
//! Writing is hand-rolled: output must be canonical (sorted keys, fixed
//! float form) so that fingerprints and byte-identity guarantees hold —
//! floats are emitted with Rust's shortest-roundtrip `Display`, which
//! `f64::from_str` parses back exactly.

use crate::{BatchError, Result};
use serde_json::Value;

/// Escape and quote a string for JSON output.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Emit an `f64` as a JSON value: shortest-roundtrip decimal for finite
/// values, `null` for NaN/infinite (JSON has no non-finite numbers).
pub fn fnum(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` omits the decimal point for integral values; keep it
        // so the token reads as a float ("1.0" not "1").
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Ordered JSON object builder (caller supplies already-encoded values).
#[derive(Debug, Default)]
pub struct Obj {
    parts: Vec<String>,
}

impl Obj {
    pub fn new() -> Obj {
        Obj { parts: Vec::new() }
    }

    /// Add a key with an already-encoded JSON value.
    pub fn raw(&mut self, key: &str, encoded: impl Into<String>) -> &mut Obj {
        self.parts.push(format!("{}:{}", esc(key), encoded.into()));
        self
    }

    pub fn str(&mut self, key: &str, value: &str) -> &mut Obj {
        self.raw(key, esc(value))
    }

    pub fn f64(&mut self, key: &str, value: f64) -> &mut Obj {
        self.raw(key, fnum(value))
    }

    pub fn u64(&mut self, key: &str, value: u64) -> &mut Obj {
        self.raw(key, value.to_string())
    }

    pub fn bool(&mut self, key: &str, value: bool) -> &mut Obj {
        self.raw(key, if value { "true" } else { "false" })
    }

    pub fn finish(&self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

/// FNV-1a 64-bit hash — the manifest fingerprint stored in journal
/// headers to detect manifest/journal mismatches on `--resume`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn type_name(v: &Value) -> &'static str {
    if v.is_null() {
        "null"
    } else if v.as_bool().is_some() {
        "bool"
    } else if v.is_number() {
        "number"
    } else if v.is_string() {
        "string"
    } else if v.is_array() {
        "array"
    } else {
        "object"
    }
}

/// Fetch a required string field, with `ctx` naming the enclosing object
/// in error messages.
pub fn get_str<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a str> {
    match v.get(key) {
        Some(s) => s.as_str().ok_or_else(|| {
            BatchError::Manifest(format!(
                "{ctx}: {key:?} must be a string, got {}",
                type_name(s)
            ))
        }),
        None => Err(BatchError::Manifest(format!(
            "{ctx}: missing required key {key:?}"
        ))),
    }
}

/// Fetch an optional string field.
pub fn opt_str<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<Option<&'a str>> {
    match v.get(key) {
        None => Ok(None),
        Some(s) if s.is_null() => Ok(None),
        Some(s) => s.as_str().map(Some).ok_or_else(|| {
            BatchError::Manifest(format!(
                "{ctx}: {key:?} must be a string, got {}",
                type_name(s)
            ))
        }),
    }
}

/// Fetch an optional unsigned integer field.
pub fn opt_u64(v: &Value, key: &str, ctx: &str) -> Result<Option<u64>> {
    match v.get(key) {
        None => Ok(None),
        Some(s) if s.is_null() => Ok(None),
        Some(s) => s.as_u64().map(Some).ok_or_else(|| {
            BatchError::Manifest(format!(
                "{ctx}: {key:?} must be a non-negative integer, got {}",
                type_name(s)
            ))
        }),
    }
}

/// Fetch an optional finite float field.
pub fn opt_f64(v: &Value, key: &str, ctx: &str) -> Result<Option<f64>> {
    match v.get(key) {
        None => Ok(None),
        Some(s) if s.is_null() => Ok(None),
        Some(s) => match s.as_f64() {
            Some(x) if x.is_finite() => Ok(Some(x)),
            _ => Err(BatchError::Manifest(format!(
                "{ctx}: {key:?} must be a finite number, got {}",
                type_name(s)
            ))),
        },
    }
}

/// Reject keys outside the allowed set — manifests with typos fail loudly
/// instead of silently running defaults.
pub fn check_keys(v: &Value, allowed: &[&str], ctx: &str) -> Result<()> {
    let obj = v.as_object().ok_or_else(|| {
        BatchError::Manifest(format!("{ctx}: expected an object, got {}", type_name(v)))
    })?;
    for key in obj.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(BatchError::Manifest(format!(
                "{ctx}: unknown key {key:?} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(esc("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn float_emission_roundtrips() {
        for v in [0.1 + 0.2, -1234.5678e-9, 3.0, f64::MIN_POSITIVE, 1e300] {
            let s = fnum(v);
            assert_eq!(s.parse::<f64>().unwrap(), v, "{s}");
        }
        assert_eq!(fnum(f64::NAN), "null");
        assert_eq!(fnum(f64::INFINITY), "null");
        assert_eq!(fnum(3.0), "3.0");
    }

    #[test]
    fn obj_builder() {
        let mut o = Obj::new();
        o.str("b", "x").u64("a", 7).bool("c", true).f64("d", 0.5);
        assert_eq!(o.finish(), r#"{"b":"x","a":7,"c":true,"d":0.5}"#);
    }

    #[test]
    fn fnv_vector() {
        // FNV-1a("a") — published test vector.
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn readers_report_context() {
        let v: Value = serde_json::from_str(r#"{"x": 1, "y": "s"}"#).unwrap();
        assert_eq!(get_str(&v, "y", "t").unwrap(), "s");
        assert!(get_str(&v, "x", "t")
            .unwrap_err()
            .to_string()
            .contains("must be a string"));
        assert!(get_str(&v, "z", "t")
            .unwrap_err()
            .to_string()
            .contains("missing"));
        assert_eq!(opt_u64(&v, "x", "t").unwrap(), Some(1));
        assert_eq!(opt_u64(&v, "z", "t").unwrap(), None);
        assert!(check_keys(&v, &["x", "y"], "t").is_ok());
        assert!(check_keys(&v, &["x"], "t")
            .unwrap_err()
            .to_string()
            .contains("unknown key"));
    }
}
