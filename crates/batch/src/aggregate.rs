//! Result aggregation: merge pool records (fresh + journaled) into a
//! deterministic report with TSV and JSON writers.
//!
//! Determinism contract: records are sorted by job ID, which the
//! manifest assigns by expansion order — so a 4-worker run, a 1-worker
//! run, and a resumed run all produce byte-identical TSV (and JSON
//! with timing suppressed) for the same manifest.

use crate::jsonio::Obj;
use crate::runner::JobOutcome;
use crate::scheduler::{JobFailure, PoolRecord};

/// One job's final state, whether computed this run or recovered from
/// the checkpoint journal.
#[derive(Debug, Clone)]
pub struct BatchRecord {
    /// Deterministic job ID (manifest expansion order).
    pub id: usize,
    /// Stable identity `"{gene_id}:{branch_token}"` used for resume.
    pub key: String,
    /// Human-readable label, e.g. `"ENSG0001:human"`.
    pub label: String,
    /// Attempts consumed (1 = first try succeeded; 0 only for
    /// journal records written by older runs, never produced here).
    pub attempts: usize,
    /// Wall-clock seconds spent on this job (all attempts).
    pub seconds: f64,
    /// The fit, or why the job was quarantined.
    pub outcome: Result<JobOutcome, JobFailure>,
    /// True if this record was recovered from the journal on resume.
    pub from_journal: bool,
}

impl BatchRecord {
    /// Convert a freshly computed pool record.
    pub fn from_pool(rec: &PoolRecord<JobOutcome>) -> BatchRecord {
        BatchRecord {
            id: rec.id,
            key: rec.key.clone(),
            label: rec.label.clone(),
            attempts: rec.attempts,
            seconds: rec.seconds,
            outcome: rec.outcome.clone(),
            from_journal: false,
        }
    }

    /// Coarse status for summaries and the TSV `status` column.
    pub fn status(&self) -> RecordStatus {
        match &self.outcome {
            Ok(_) => RecordStatus::Done,
            Err(f) if f.timed_out => RecordStatus::TimedOut,
            Err(_) => RecordStatus::Failed,
        }
    }
}

/// Coarse per-job status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordStatus {
    /// Fit succeeded.
    Done,
    /// Quarantined after exhausting the retry budget (or a fatal error).
    Failed,
    /// Quarantined because the per-job time budget ran out.
    TimedOut,
}

impl RecordStatus {
    /// Fixed token used in TSV/JSON output.
    pub fn token(self) -> &'static str {
        match self {
            RecordStatus::Done => "done",
            RecordStatus::Failed => "failed",
            RecordStatus::TimedOut => "timed_out",
        }
    }
}

/// Run-level counters for the summary block.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Jobs the manifest expanded to.
    pub total: usize,
    /// Jobs with a successful fit.
    pub done: usize,
    /// Jobs quarantined with an error (incl. timeouts).
    pub failed: usize,
    /// Jobs never run (cancelled before being picked up).
    pub cancelled: usize,
    /// Jobs that needed more than one attempt.
    pub retried: usize,
    /// Records recovered from the journal rather than recomputed.
    pub from_journal: usize,
    /// Wall-clock seconds for this run (excludes journaled work).
    pub wall_seconds: f64,
}

/// The merged, sorted result set of a batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// All finished records, sorted by job ID.
    pub records: Vec<BatchRecord>,
    /// Run-level counters.
    pub summary: RunSummary,
}

impl BatchReport {
    /// Sort records by job ID and derive the summary. `total` is the
    /// full expansion size, so `total - records.len()` jobs were
    /// cancelled before starting.
    pub fn from_records(
        mut records: Vec<BatchRecord>,
        total: usize,
        wall_seconds: f64,
    ) -> BatchReport {
        records.sort_by_key(|r| r.id);
        let done = records.iter().filter(|r| r.outcome.is_ok()).count();
        let summary = RunSummary {
            total,
            done,
            failed: records.len() - done,
            cancelled: total.saturating_sub(records.len()),
            retried: records.iter().filter(|r| r.attempts > 1).count(),
            from_journal: records.iter().filter(|r| r.from_journal).count(),
            wall_seconds,
        };
        BatchReport { records, summary }
    }

    /// Render the per-job table as TSV. Contains no timing, so output is
    /// byte-identical across worker counts and resumes.
    pub fn to_tsv(&self) -> String {
        self.to_tsv_with(false)
    }

    /// TSV with optional per-gene eigendecomposition-cache columns
    /// (`cache_hits`, `cache_misses`, `cache_hit_rate`) — the data the
    /// adaptive-cache-sizing work starts from. Opt-in because concurrent
    /// cache probes can split a hit into two misses depending on thread
    /// timing, so these columns are not byte-deterministic and live
    /// behind the same flag as the other timing output.
    pub fn to_tsv_with(&self, include_cache: bool) -> String {
        let mut out = String::from(
            "job_id\tkey\tlabel\tstatus\tattempts\tlnl0\tlnl1\tstat\tp\tkappa\tomega0\tomega2\tp0\tp1\tpos_sites\terror",
        );
        if include_cache {
            out.push_str("\tcache_hits\tcache_misses\tcache_hit_rate");
        }
        out.push('\n');
        for rec in &self.records {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}",
                rec.id,
                rec.key,
                rec.label,
                rec.status().token(),
                rec.attempts
            ));
            match &rec.outcome {
                Ok(o) => {
                    for v in [
                        o.lnl0, o.lnl1, o.stat, o.p_value, o.kappa, o.omega0, o.omega2, o.p0, o.p1,
                    ] {
                        out.push_str(&format!("\t{v:.6}"));
                    }
                    out.push_str(&format!("\t{}\t", o.n_pos_sites));
                    if include_cache {
                        // 0/0 (no lookups) is defined as 0.0, never NaN.
                        out.push_str(&format!(
                            "\t{}\t{}\t{:.4}",
                            o.cache_hits,
                            o.cache_misses,
                            o.cache_hit_rate()
                        ));
                    }
                }
                Err(f) => {
                    out.push_str(&"\tNA".repeat(10));
                    out.push('\t');
                    out.push_str(&sanitize(&f.error));
                    if include_cache {
                        out.push_str(&"\tNA".repeat(3));
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render the full report as JSON. With `include_timing` false the
    /// output is deterministic — no wall-clock, per-job seconds, or
    /// journal provenance (which legitimately differs between a fresh
    /// and a resumed run) — and suitable for byte-comparison across
    /// runs.
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut records = String::from("[");
        for (i, rec) in self.records.iter().enumerate() {
            if i > 0 {
                records.push(',');
            }
            let mut o = Obj::new();
            o.u64("job_id", rec.id as u64)
                .str("key", &rec.key)
                .str("label", &rec.label)
                .str("status", rec.status().token())
                .u64("attempts", rec.attempts as u64);
            if include_timing {
                o.bool("from_journal", rec.from_journal);
                o.f64("seconds", rec.seconds);
            }
            match &rec.outcome {
                Ok(out) => {
                    let mut r = Obj::new();
                    r.f64("lnl0", out.lnl0)
                        .f64("lnl1", out.lnl1)
                        .f64("stat", out.stat)
                        .f64("p_value", out.p_value)
                        .f64("kappa", out.kappa)
                        .f64("omega0", out.omega0)
                        .f64("omega2", out.omega2)
                        .f64("p0", out.p0)
                        .f64("p1", out.p1)
                        .u64("n_pos_sites", out.n_pos_sites as u64)
                        .u64("iterations", out.iterations as u64);
                    if include_timing {
                        // 0/0 (no lookups) is defined as 0.0, never NaN.
                        r.u64("cache_hits", out.cache_hits)
                            .u64("cache_misses", out.cache_misses)
                            .f64("cache_hit_rate", out.cache_hit_rate());
                    }
                    o.raw("result", r.finish());
                }
                Err(f) => {
                    o.str("error", &f.error);
                }
            }
            records.push_str(&o.finish());
        }
        records.push(']');

        let s = &self.summary;
        let mut sum = Obj::new();
        sum.u64("total", s.total as u64)
            .u64("done", s.done as u64)
            .u64("failed", s.failed as u64)
            .u64("cancelled", s.cancelled as u64)
            .u64("retried", s.retried as u64);
        if include_timing {
            sum.u64("from_journal", s.from_journal as u64);
            sum.f64("wall_seconds", s.wall_seconds);
        }

        let mut top = Obj::new();
        top.raw("summary", sum.finish()).raw("jobs", records);
        let mut text = top.finish();
        text.push('\n');
        text
    }
}

/// Flatten error text for the single-line TSV cell.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c == '\t' || c == '\n' || c == '\r' {
                ' '
            } else {
                c
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_record(id: usize) -> BatchRecord {
        BatchRecord {
            id,
            key: format!("g{id}:1"),
            label: format!("g{id}:A"),
            attempts: 1,
            seconds: 0.5,
            outcome: Ok(JobOutcome {
                lnl0: -100.5,
                lnl1: -98.25,
                stat: 4.5,
                p_value: 0.0339,
                kappa: 2.0,
                omega0: 0.1,
                omega2: 4.0,
                p0: 0.7,
                p1: 0.2,
                n_pos_sites: 2,
                iterations: 40,
                cache_hits: 30,
                cache_misses: 10,
            }),
            from_journal: false,
        }
    }

    fn failed_record(id: usize) -> BatchRecord {
        BatchRecord {
            id,
            key: format!("g{id}:1"),
            label: format!("g{id}:A"),
            attempts: 3,
            seconds: 0.1,
            outcome: Err(JobFailure {
                error: "optimizer\tblew\nup".into(),
                recoverable: true,
                timed_out: false,
                trace_tail: Vec::new(),
            }),
            from_journal: true,
        }
    }

    #[test]
    fn report_sorts_and_counts() {
        let report =
            BatchReport::from_records(vec![failed_record(2), ok_record(0), ok_record(1)], 5, 1.25);
        assert_eq!(
            report.records.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let s = &report.summary;
        assert_eq!((s.total, s.done, s.failed, s.cancelled), (5, 2, 1, 2));
        assert_eq!(s.retried, 1);
        assert_eq!(s.from_journal, 1);
    }

    #[test]
    fn tsv_is_complete_and_single_line_per_job() {
        let report = BatchReport::from_records(vec![ok_record(0), failed_record(1)], 2, 0.0);
        let tsv = report.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 jobs");
        let header_cols = lines[0].split('\t').count();
        for line in &lines[1..] {
            assert_eq!(line.split('\t').count(), header_cols, "{line}");
        }
        assert!(lines[1].contains("-100.500000"));
        assert!(
            lines[2].contains("optimizer blew up"),
            "error text flattened: {}",
            lines[2]
        );
        assert!(lines[2].contains("\tNA\t"));
    }

    #[test]
    fn json_parses_and_timing_toggle_controls_determinism() {
        let report = BatchReport::from_records(vec![ok_record(0), failed_record(1)], 2, 3.5);
        let with: serde_json::Value = serde_json::from_str(&report.to_json(true)).unwrap();
        assert!(with.get("summary").unwrap().get("wall_seconds").is_some());
        assert!(with.get("jobs").unwrap().as_array().unwrap()[1]
            .get("from_journal")
            .is_some());
        let without: serde_json::Value = serde_json::from_str(&report.to_json(false)).unwrap();
        assert!(without
            .get("summary")
            .unwrap()
            .get("wall_seconds")
            .is_none());
        assert!(
            without.get("jobs").unwrap().as_array().unwrap()[1]
                .get("from_journal")
                .is_none(),
            "journal provenance differs between fresh and resumed runs; keep it out of \
             deterministic output"
        );
        let jobs = without.get("jobs").unwrap().as_array().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].get("status").unwrap().as_str().unwrap(), "done");
        assert_eq!(
            jobs[0]
                .get("result")
                .unwrap()
                .get("lnl1")
                .unwrap()
                .as_f64()
                .unwrap(),
            -98.25
        );
        assert_eq!(jobs[1].get("status").unwrap().as_str().unwrap(), "failed");
        assert!(jobs[1].get("result").is_none());
    }

    #[test]
    fn cache_columns_are_opt_in() {
        // Job 1: an uncached backend — zero lookups must render as 0.0,
        // never NaN (and never an unparsable token).
        let mut uncached = ok_record(1);
        if let Ok(o) = &mut uncached.outcome {
            o.cache_hits = 0;
            o.cache_misses = 0;
        }
        let report =
            BatchReport::from_records(vec![ok_record(0), uncached, failed_record(2)], 3, 0.0);
        let plain = report.to_tsv();
        assert!(!plain.contains("cache_hits"), "default TSV is unchanged");
        let with = report.to_tsv_with(true);
        let lines: Vec<&str> = with.lines().collect();
        assert!(lines[0].ends_with("cache_hits\tcache_misses\tcache_hit_rate"));
        let header_cols = lines[0].split('\t').count();
        for line in &lines[1..] {
            assert_eq!(line.split('\t').count(), header_cols, "{line}");
        }
        assert!(lines[1].ends_with("\t30\t10\t0.7500"), "{}", lines[1]);
        assert!(lines[2].ends_with("\t0\t0\t0.0000"), "{}", lines[2]);
        assert!(!with.contains("NaN"), "{with}");
        assert!(lines[3].ends_with("\tNA\tNA\tNA"), "{}", lines[3]);

        let timed: serde_json::Value = serde_json::from_str(&report.to_json(true)).unwrap();
        let jobs = timed.get("jobs").unwrap().as_array().unwrap();
        let result = jobs[0].get("result").unwrap();
        assert_eq!(result.get("cache_hits").unwrap().as_u64().unwrap(), 30);
        assert_eq!(
            result.get("cache_hit_rate").unwrap().as_f64().unwrap(),
            0.75
        );
        assert_eq!(
            jobs[1]
                .get("result")
                .unwrap()
                .get("cache_hit_rate")
                .unwrap()
                .as_f64()
                .unwrap(),
            0.0,
            "0/0 lookups renders as the number 0.0, not null/NaN"
        );
        let plain_json: serde_json::Value = serde_json::from_str(&report.to_json(false)).unwrap();
        assert!(plain_json.get("jobs").unwrap().as_array().unwrap()[0]
            .get("result")
            .unwrap()
            .get("cache_hits")
            .is_none());
    }
}
