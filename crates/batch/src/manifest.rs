//! The batch job manifest: a JSON document listing gene families and the
//! branches to test on each, validated strictly (unknown keys rejected)
//! and expanded into a deterministic job list.
//!
//! ```json
//! {
//!   "version": 1,
//!   "genes": [
//!     {
//!       "id": "ENSGT0001",
//!       "alignment": "ENSGT0001.fasta",
//!       "tree": "ENSGT0001.nwk",
//!       "branches": "all",
//!       "backend": "slim",
//!       "freq": "f3x4",
//!       "genetic_code": "universal",
//!       "seed": 1,
//!       "max_iterations": 500
//!     }
//!   ]
//! }
//! ```
//!
//! `branches` is either the string `"all"` (every branch of the tree, in
//! arena order — the paper's scan workload) or a non-empty array mixing
//! leaf names (strings) and arena node ids (integers).
//!
//! Job ids are assigned by expansion order: manifest gene order × branch
//! order. The id, and the stable key `"<gene>:<node>"`, identify a job
//! across runs of the same manifest — the basis of checkpoint/resume.

use crate::jsonio::{self, check_keys, fnum, get_str, opt_f64, opt_str, opt_u64, Obj};
use crate::scheduler::PoolJob;
use crate::{BatchError, Result};
use serde_json::Value;
use slim_bio::{CodonAlignment, FreqModel, GeneticCode, NodeId, Tree};
use slim_core::{AnalysisOptions, Backend, GradMode};
use std::path::Path;
use std::sync::Arc;

/// A branch reference in a manifest: by arena node id or by leaf name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BranchRef {
    /// Arena node id (the branch above this node).
    Node(usize),
    /// Leaf name (the terminal branch above this leaf).
    Name(String),
}

/// Which branches of a gene's tree to test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BranchSpec {
    /// Every branch, in arena order.
    All,
    /// An explicit list, tested in the order given.
    List(Vec<BranchRef>),
}

/// One gene family in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Unique gene identifier (no `:` — it separates gene from branch in
    /// job keys).
    pub id: String,
    /// Alignment path, relative to the manifest file's directory.
    pub alignment: String,
    /// Tree path, relative to the manifest file's directory.
    pub tree: String,
    /// Branches to test.
    pub branches: BranchSpec,
    /// Computational backend.
    pub backend: Backend,
    /// Codon frequency estimator.
    pub freq: FreqModel,
    /// `true` selects the vertebrate mitochondrial code.
    pub mito: bool,
    /// Finite-difference gradient flavor.
    pub grad: GradMode,
    /// Base RNG seed (retries reseed deterministically from this).
    pub seed: u64,
    /// BFGS iteration cap per hypothesis.
    pub max_iterations: usize,
    /// Starting-point jitter.
    pub jitter: f64,
    /// Fixed starting branch length, if any.
    pub initial_branch_length: Option<f64>,
}

impl ManifestEntry {
    /// Assemble the analysis options this entry describes.
    pub fn options(&self) -> AnalysisOptions {
        AnalysisOptions {
            backend: self.backend,
            freq_model: self.freq,
            seed: self.seed,
            max_iterations: self.max_iterations,
            grad_mode: self.grad,
            initial_branch_length: self.initial_branch_length,
            jitter: self.jitter,
            genetic_code: if self.mito {
                GeneticCode::vertebrate_mitochondrial()
            } else {
                GeneticCode::universal()
            },
            ..AnalysisOptions::default()
        }
    }
}

/// A validated batch manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchManifest {
    /// Schema version; only 1 exists.
    pub version: u64,
    /// Gene families in manifest order.
    pub entries: Vec<ManifestEntry>,
}

const TOP_KEYS: [&str; 2] = ["version", "genes"];
const ENTRY_KEYS: [&str; 12] = [
    "id",
    "alignment",
    "tree",
    "branches",
    "backend",
    "freq",
    "genetic_code",
    "grad",
    "seed",
    "max_iterations",
    "jitter",
    "initial_branch_length",
];

fn backend_token(b: Backend) -> &'static str {
    match b {
        Backend::CodeMlStyle => "codeml",
        Backend::Slim => "slim",
        Backend::SlimPlus => "slim+",
        Backend::SlimSymmetric => "eq12",
        Backend::SlimParallel => "slim-par",
    }
}

fn grad_token(g: GradMode) -> &'static str {
    match g {
        GradMode::Forward => "forward",
        GradMode::Central => "central",
    }
}

fn parse_grad(s: &str, ctx: &str) -> Result<GradMode> {
    match s.to_ascii_lowercase().as_str() {
        "forward" => Ok(GradMode::Forward),
        "central" => Ok(GradMode::Central),
        _ => Err(BatchError::Manifest(format!(
            "{ctx}: unknown grad mode {s:?} (forward|central)"
        ))),
    }
}

fn parse_genetic_code(s: &str, ctx: &str) -> Result<bool> {
    match s.to_ascii_lowercase().as_str() {
        "universal" | "standard" => Ok(false),
        "vertebrate-mt" | "vertebrate-mitochondrial" | "mito" => Ok(true),
        _ => Err(BatchError::Manifest(format!(
            "{ctx}: unknown genetic code {s:?} (universal|vertebrate-mt)"
        ))),
    }
}

impl BatchManifest {
    /// Parse and validate a manifest document.
    ///
    /// # Errors
    /// [`BatchError::Manifest`] on malformed JSON, wrong version, unknown
    /// keys, duplicate/invalid gene ids, or invalid field values.
    pub fn parse(text: &str) -> Result<BatchManifest> {
        let root: Value = serde_json::from_str(text)
            .map_err(|e| BatchError::Manifest(format!("invalid JSON: {e}")))?;
        check_keys(&root, &TOP_KEYS, "manifest")?;
        let version = opt_u64(&root, "version", "manifest")?.ok_or_else(|| {
            BatchError::Manifest("manifest: missing required key \"version\"".into())
        })?;
        if version != 1 {
            return Err(BatchError::Manifest(format!(
                "unsupported manifest version {version} (expected 1)"
            )));
        }
        let genes = root.get("genes").and_then(Value::as_array).ok_or_else(|| {
            BatchError::Manifest("manifest: \"genes\" must be a non-empty array".into())
        })?;
        if genes.is_empty() {
            return Err(BatchError::Manifest(
                "manifest: \"genes\" must be a non-empty array".into(),
            ));
        }

        let defaults = AnalysisOptions::default();
        let mut entries = Vec::with_capacity(genes.len());
        let mut seen = std::collections::BTreeSet::new();
        for (i, g) in genes.iter().enumerate() {
            let ctx = format!("genes[{i}]");
            check_keys(g, &ENTRY_KEYS, &ctx)?;
            let id = get_str(g, "id", &ctx)?.to_string();
            if id.is_empty()
                || id.contains(':')
                || id.chars().any(|c| c.is_whitespace() || c.is_control())
            {
                return Err(BatchError::Manifest(format!(
                    "{ctx}: id {id:?} must be non-empty, without ':' or whitespace"
                )));
            }
            if !seen.insert(id.clone()) {
                return Err(BatchError::Manifest(format!(
                    "{ctx}: duplicate gene id {id:?}"
                )));
            }
            let alignment = get_str(g, "alignment", &ctx)?.to_string();
            let tree = get_str(g, "tree", &ctx)?.to_string();
            if alignment.is_empty() || tree.is_empty() {
                return Err(BatchError::Manifest(format!(
                    "{ctx}: \"alignment\" and \"tree\" must be non-empty paths"
                )));
            }
            let branches = Self::parse_branches(g, &ctx)?;
            let backend = match opt_str(g, "backend", &ctx)? {
                Some(s) => Backend::from_str_opt(s)
                    .ok_or_else(|| BatchError::Manifest(format!("{ctx}: unknown backend {s:?}")))?,
                None => defaults.backend,
            };
            let freq = match opt_str(g, "freq", &ctx)? {
                Some(s) => FreqModel::from_str_opt(s).ok_or_else(|| {
                    BatchError::Manifest(format!("{ctx}: unknown frequency model {s:?}"))
                })?,
                None => defaults.freq_model,
            };
            let mito = match opt_str(g, "genetic_code", &ctx)? {
                Some(s) => parse_genetic_code(s, &ctx)?,
                None => false,
            };
            let grad = match opt_str(g, "grad", &ctx)? {
                Some(s) => parse_grad(s, &ctx)?,
                None => defaults.grad_mode,
            };
            let seed = opt_u64(g, "seed", &ctx)?.unwrap_or(defaults.seed);
            let max_iterations = opt_u64(g, "max_iterations", &ctx)?
                .map(|v| v as usize)
                .unwrap_or(defaults.max_iterations);
            if max_iterations == 0 {
                return Err(BatchError::Manifest(format!(
                    "{ctx}: max_iterations must be ≥ 1"
                )));
            }
            let jitter = match opt_f64(g, "jitter", &ctx)? {
                Some(v) if v >= 0.0 => v,
                Some(v) => {
                    return Err(BatchError::Manifest(format!(
                        "{ctx}: jitter must be ≥ 0, got {v}"
                    )))
                }
                None => defaults.jitter,
            };
            let initial_branch_length = match opt_f64(g, "initial_branch_length", &ctx)? {
                Some(v) if v > 0.0 => Some(v),
                Some(v) => {
                    return Err(BatchError::Manifest(format!(
                        "{ctx}: initial_branch_length must be > 0, got {v}"
                    )))
                }
                None => None,
            };
            entries.push(ManifestEntry {
                id,
                alignment,
                tree,
                branches,
                backend,
                freq,
                mito,
                grad,
                seed,
                max_iterations,
                jitter,
                initial_branch_length,
            });
        }
        Ok(BatchManifest { version, entries })
    }

    fn parse_branches(g: &Value, ctx: &str) -> Result<BranchSpec> {
        match g.get("branches") {
            None => Ok(BranchSpec::All),
            Some(v) if v.as_str() == Some("all") => Ok(BranchSpec::All),
            Some(v) => {
                let arr = v.as_array().ok_or_else(|| {
                    BatchError::Manifest(format!(
                        "{ctx}: \"branches\" must be \"all\" or an array of names/node ids"
                    ))
                })?;
                if arr.is_empty() {
                    return Err(BatchError::Manifest(format!(
                        "{ctx}: \"branches\" array must be non-empty"
                    )));
                }
                let mut refs = Vec::with_capacity(arr.len());
                for (j, item) in arr.iter().enumerate() {
                    if let Some(n) = item.as_u64() {
                        refs.push(BranchRef::Node(n as usize));
                    } else if let Some(s) = item.as_str() {
                        if s.is_empty() {
                            return Err(BatchError::Manifest(format!(
                                "{ctx}: branches[{j}] must be a non-empty name"
                            )));
                        }
                        refs.push(BranchRef::Name(s.to_string()));
                    } else {
                        return Err(BatchError::Manifest(format!(
                            "{ctx}: branches[{j}] must be a leaf name or a node id"
                        )));
                    }
                }
                Ok(BranchSpec::List(refs))
            }
        }
    }

    /// Canonical JSON form: every field resolved and emitted with sorted,
    /// fixed key order. `parse(canonical_json(m))` reproduces `m`, and the
    /// fingerprint is FNV-1a over these bytes.
    pub fn canonical_json(&self) -> String {
        let genes: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                let branches = match &e.branches {
                    BranchSpec::All => "\"all\"".to_string(),
                    BranchSpec::List(refs) => {
                        let items: Vec<String> = refs
                            .iter()
                            .map(|r| match r {
                                BranchRef::Node(n) => n.to_string(),
                                BranchRef::Name(s) => jsonio::esc(s),
                            })
                            .collect();
                        format!("[{}]", items.join(","))
                    }
                };
                let mut o = Obj::new();
                o.str("alignment", &e.alignment)
                    .str("backend", backend_token(e.backend))
                    .raw("branches", branches)
                    .str("freq", e.freq.label())
                    .str(
                        "genetic_code",
                        if e.mito { "vertebrate-mt" } else { "universal" },
                    )
                    .str("grad", grad_token(e.grad))
                    .str("id", &e.id)
                    .raw(
                        "initial_branch_length",
                        e.initial_branch_length
                            .map(fnum)
                            .unwrap_or_else(|| "null".into()),
                    )
                    .f64("jitter", e.jitter)
                    .u64("max_iterations", e.max_iterations as u64)
                    .u64("seed", e.seed)
                    .str("tree", &e.tree);
                o.finish()
            })
            .collect();
        format!(
            "{{\"version\":{},\"genes\":[{}]}}",
            self.version,
            genes.join(",")
        )
    }

    /// FNV-1a 64 fingerprint of the canonical JSON — stored in journal
    /// headers so `--resume` refuses a journal from a different manifest.
    pub fn fingerprint(&self) -> u64 {
        jsonio::fnv1a64(self.canonical_json().as_bytes())
    }

    /// Expand into the deterministic job list. Input files are loaded
    /// once per gene (jobs share them via `Arc`); a gene whose files fail
    /// to load becomes *poisoned* jobs that fail immediately at run time
    /// with the captured error, so one bad gene never aborts the batch.
    pub fn expand(&self, base_dir: &Path) -> Vec<PoolJob<JobPayload>> {
        let mut jobs = Vec::new();
        for entry in &self.entries {
            expand_entry(entry, base_dir, &mut jobs);
        }
        jobs
    }
}

/// Input side of one job: loaded data, or the load error to report.
#[derive(Debug, Clone)]
pub enum JobInput {
    /// Files loaded and the branch resolved.
    Ready {
        /// Shared tree (foreground set per job at fit time, no copies).
        tree: Arc<Tree>,
        /// Shared alignment.
        aln: Arc<CodonAlignment>,
        /// The branch to test, by child node.
        branch: NodeId,
    },
    /// Load/resolution failed; the job is quarantined with this error.
    Poisoned {
        /// What went wrong at expansion time.
        error: String,
    },
}

/// Payload carried by each scheduled job.
#[derive(Debug, Clone)]
pub struct JobPayload {
    /// The gene this job belongs to.
    pub gene_id: String,
    /// Loaded input or captured failure.
    pub input: JobInput,
    /// Analysis options from the manifest entry.
    pub options: AnalysisOptions,
}

fn read_input(base: &Path, rel: &str) -> std::result::Result<String, String> {
    let path = base.join(rel);
    std::fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

fn load_tree(text: &str) -> std::result::Result<Tree, String> {
    if slim_bio::is_nexus(text) {
        slim_bio::parse_nexus_tree(text).map_err(|e| e.to_string())
    } else {
        slim_bio::parse_newick(text).map_err(|e| e.to_string())
    }
}

fn load_alignment(text: &str, code: &GeneticCode) -> std::result::Result<CodonAlignment, String> {
    let trimmed = text.trim_start();
    if slim_bio::is_nexus(text) {
        let aln = slim_bio::parse_nexus_alignment(text).map_err(|e| e.to_string())?;
        let names = aln.names().to_vec();
        let seqs = (0..aln.n_sequences())
            .map(|i| aln.sequence(i).to_vec())
            .collect();
        CodonAlignment::new_with_code(names, seqs, code).map_err(|e| e.to_string())
    } else if trimmed.starts_with('>') {
        CodonAlignment::from_fasta_with_code(text, code).map_err(|e| e.to_string())
    } else {
        CodonAlignment::from_phylip_with_code(text, code).map_err(|e| e.to_string())
    }
}

fn expand_entry(entry: &ManifestEntry, base_dir: &Path, jobs: &mut Vec<PoolJob<JobPayload>>) {
    let options = entry.options();
    let mut push = |key: String, label: String, input: JobInput| {
        jobs.push(PoolJob {
            id: jobs.len(),
            key,
            label,
            payload: JobPayload {
                gene_id: entry.id.clone(),
                input,
                options: options.clone(),
            },
        });
    };

    // The tree determines the branch list; without it the entry reduces
    // to a single quarantined job.
    let tree = match read_input(base_dir, &entry.tree).and_then(|t| load_tree(&t)) {
        Ok(t) => Arc::new(t),
        Err(error) => {
            push(
                format!("{}:*", entry.id),
                format!("{}:*", entry.id),
                JobInput::Poisoned {
                    error: format!("tree: {error}"),
                },
            );
            return;
        }
    };
    // A bad alignment still expands per-branch (sibling isolation): each
    // branch job carries the same captured error.
    let aln = read_input(base_dir, &entry.alignment)
        .and_then(|t| load_alignment(&t, &options.genetic_code))
        .map(Arc::new);

    let branches: Vec<(String, std::result::Result<NodeId, String>)> = match &entry.branches {
        BranchSpec::All => tree
            .branch_nodes()
            .into_iter()
            .map(|id| (id.0.to_string(), Ok(id)))
            .collect(),
        BranchSpec::List(refs) => refs
            .iter()
            .map(|r| match r {
                BranchRef::Node(n) => {
                    let token = n.to_string();
                    if *n >= tree.n_nodes() {
                        (
                            token,
                            Err(format!(
                                "node id {n} out of range ({} nodes)",
                                tree.n_nodes()
                            )),
                        )
                    } else if tree.node(NodeId(*n)).parent.is_none() {
                        (
                            token,
                            Err(format!("node id {n} is the root; it has no branch")),
                        )
                    } else {
                        (token, Ok(NodeId(*n)))
                    }
                }
                BranchRef::Name(name) => match tree.leaf_by_name(name) {
                    Some(id) => (id.0.to_string(), Ok(id)),
                    None => (
                        name.clone(),
                        Err(format!("no leaf named {name:?} in the tree")),
                    ),
                },
            })
            .collect(),
    };

    for (token, resolved) in branches {
        let key = format!("{}:{}", entry.id, token);
        match resolved {
            Ok(branch) => {
                let label = match tree.node(branch).name.as_deref() {
                    Some(name) => format!("{}:{}", entry.id, name),
                    None => format!("{}:node{}", entry.id, branch.0),
                };
                match &aln {
                    Ok(aln) => push(
                        key,
                        label,
                        JobInput::Ready {
                            tree: Arc::clone(&tree),
                            aln: Arc::clone(aln),
                            branch,
                        },
                    ),
                    Err(error) => push(
                        key,
                        label,
                        JobInput::Poisoned {
                            error: format!("alignment: {error}"),
                        },
                    ),
                }
            }
            Err(error) => {
                let label = format!("{}:{}", entry.id, token);
                push(
                    key,
                    label,
                    JobInput::Poisoned {
                        error: format!("branch: {error}"),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(branches: &str) -> String {
        format!(
            r#"{{"version": 1, "genes": [
                {{"id": "g1", "alignment": "a.fa", "tree": "t.nwk", "branches": {branches}}}
            ]}}"#
        )
    }

    #[test]
    fn parses_minimal_manifest_with_defaults() {
        let m = BatchManifest::parse(&minimal("\"all\"")).unwrap();
        assert_eq!(m.version, 1);
        assert_eq!(m.entries.len(), 1);
        let e = &m.entries[0];
        assert_eq!(e.id, "g1");
        assert_eq!(e.branches, BranchSpec::All);
        assert_eq!(e.backend, Backend::Slim);
        assert_eq!(e.freq, FreqModel::F3x4);
        assert_eq!(e.seed, 1);
        assert!(!e.mito);
    }

    #[test]
    fn branches_list_mixes_names_and_ids() {
        let m = BatchManifest::parse(&minimal("[\"A\", 3, \"B\"]")).unwrap();
        assert_eq!(
            m.entries[0].branches,
            BranchSpec::List(vec![
                BranchRef::Name("A".into()),
                BranchRef::Node(3),
                BranchRef::Name("B".into()),
            ])
        );
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        for (doc, needle) in [
            (
                r#"{"version": 2, "genes": [{"id":"g","alignment":"a","tree":"t"}]}"#,
                "version",
            ),
            (
                r#"{"genes": [{"id":"g","alignment":"a","tree":"t"}]}"#,
                "version",
            ),
            (r#"{"version": 1, "genes": [], "extra": 1}"#, "unknown key"),
            (r#"{"version": 1, "genes": []}"#, "non-empty"),
            (
                r#"{"version": 1, "genes": [{"id":"g","alignment":"a","tree":"t","typo":1}]}"#,
                "unknown key",
            ),
            (
                r#"{"version": 1, "genes": [{"id":"a:b","alignment":"a","tree":"t"}]}"#,
                "':'",
            ),
            (
                r#"{"version": 1, "genes": [{"id":"g","alignment":"a","tree":"t","branches":[]}]}"#,
                "non-empty",
            ),
            (
                r#"{"version": 1, "genes": [{"id":"g","alignment":"a","tree":"t","backend":"nope"}]}"#,
                "backend",
            ),
            (
                r#"{"version": 1, "genes": [{"id":"g","alignment":"a","tree":"t","jitter":-1}]}"#,
                "jitter",
            ),
            (
                r#"{"version": 1, "genes": [{"id":"g","alignment":"a","tree":"t","branches":[true]}]}"#,
                "branches[0]",
            ),
        ] {
            let err = BatchManifest::parse(doc).unwrap_err().to_string();
            assert!(err.contains(needle), "{doc} -> {err}");
        }
    }

    #[test]
    fn rejects_duplicate_ids() {
        let doc = r#"{"version": 1, "genes": [
            {"id":"g","alignment":"a","tree":"t"},
            {"id":"g","alignment":"b","tree":"u"}
        ]}"#;
        assert!(BatchManifest::parse(doc)
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn canonical_json_roundtrips() {
        let doc = r#"{"version": 1, "genes": [
            {"id":"g1","alignment":"a.fa","tree":"t.nwk","branches":["A",3],
             "backend":"slim+","freq":"f61","genetic_code":"vertebrate-mt",
             "grad":"forward","seed":7,"max_iterations":42,"jitter":0.125,
             "initial_branch_length":0.5},
            {"id":"g2","alignment":"b.fa","tree":"u.nwk"}
        ]}"#;
        let m = BatchManifest::parse(doc).unwrap();
        let canon = m.canonical_json();
        let reparsed = BatchManifest::parse(&canon).unwrap();
        assert_eq!(reparsed, m);
        assert_eq!(reparsed.canonical_json(), canon);
        assert_eq!(reparsed.fingerprint(), m.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_manifests() {
        let a = BatchManifest::parse(&minimal("\"all\"")).unwrap();
        let b = BatchManifest::parse(&minimal("[\"A\"]")).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn expansion_assigns_dense_deterministic_ids() {
        let dir = std::env::temp_dir().join(format!("slim_batch_manifest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("t.nwk"), "((A:0.1,B:0.2):0.05,C:0.3);").unwrap();
        std::fs::write(dir.join("a.fa"), ">A\nATGCCC\n>B\nATGCCA\n>C\nATGCCC\n").unwrap();
        let doc = r#"{"version": 1, "genes": [
            {"id":"g1","alignment":"a.fa","tree":"t.nwk","branches":"all"},
            {"id":"g2","alignment":"a.fa","tree":"t.nwk","branches":["A","nope",99]}
        ]}"#;
        let m = BatchManifest::parse(doc).unwrap();
        let jobs = m.expand(&dir);
        // g1: 4 branches (5 nodes - root); g2: 3 listed.
        assert_eq!(jobs.len(), 7);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i);
        }
        assert!(jobs[..4].iter().all(|j| j.key.starts_with("g1:")));
        // Unresolvable branches become poisoned jobs, not errors.
        let poisoned: Vec<&str> = jobs
            .iter()
            .filter(|j| matches!(j.payload.input, JobInput::Poisoned { .. }))
            .map(|j| j.key.as_str())
            .collect();
        assert_eq!(poisoned, vec!["g2:nope", "g2:99"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_tree_poisons_whole_entry_missing_alignment_poisons_per_branch() {
        let dir = std::env::temp_dir().join(format!("slim_batch_manifest2_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("t.nwk"), "((A:0.1,B:0.2):0.05,C:0.3);").unwrap();
        let doc = r#"{"version": 1, "genes": [
            {"id":"g1","alignment":"missing.fa","tree":"t.nwk"},
            {"id":"g2","alignment":"missing.fa","tree":"missing.nwk"}
        ]}"#;
        let m = BatchManifest::parse(doc).unwrap();
        let jobs = m.expand(&dir);
        // g1 expands per-branch (tree known), each poisoned by the
        // alignment error; g2 collapses to one job.
        assert_eq!(jobs.len(), 5);
        assert_eq!(jobs[4].key, "g2:*");
        for j in &jobs {
            assert!(
                matches!(j.payload.input, JobInput::Poisoned { .. }),
                "{}",
                j.key
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
