//! A generic worker pool over crossbeam channels.
//!
//! Jobs are fanned out to N worker threads; each job is attempted up to
//! `1 + retries` times when it fails *recoverably* (non-finite
//! likelihoods, optimizer failures — anything worth a reseeded restart).
//! Non-recoverable failures (bad input files, malformed data) are
//! quarantined immediately: recorded with the captured error, without
//! aborting sibling jobs. A *panicking* runner is caught and treated as
//! a recoverable failure — one numerically pathological job (e.g. a
//! debug assertion deep in a fit) must never abort the batch.
//!
//! Completion records stream to a single collector callback on the
//! calling thread (in completion order — the journal's view); the final
//! result vector is sorted by job id, so downstream aggregation is
//! deterministic regardless of worker count or scheduling.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cooperative cancellation shared between the pool and its caller.
/// Workers check it before starting each job; in-flight jobs finish.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, un-cancelled flag.
    pub fn new() -> CancelFlag {
        CancelFlag::default()
    }

    /// Request cancellation; idempotent. Release pairs with the Acquire
    /// in [`CancelFlag::is_cancelled`]: a worker that observes the flag
    /// also observes everything the canceller wrote before setting it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A job handed to the pool.
#[derive(Debug, Clone)]
pub struct PoolJob<J> {
    /// Dense deterministic id (assignment order = manifest expansion
    /// order); results are sorted by it.
    pub id: usize,
    /// Stable identity across runs of the same manifest (resume matches
    /// journal records by key).
    pub key: String,
    /// Human-readable label for progress output.
    pub label: String,
    /// Runner-specific input.
    pub payload: J,
}

/// An error returned by a runner attempt.
#[derive(Debug, Clone)]
pub struct JobError {
    /// What went wrong.
    pub message: String,
    /// Whether a retry (with a reseeded start) could plausibly succeed.
    pub recoverable: bool,
}

impl JobError {
    /// A failure worth retrying (convergence trouble, non-finite lnL).
    pub fn recoverable(message: impl Into<String>) -> JobError {
        JobError {
            message: message.into(),
            recoverable: true,
        }
    }

    /// A failure that retrying cannot fix (bad input).
    pub fn fatal(message: impl Into<String>) -> JobError {
        JobError {
            message: message.into(),
            recoverable: false,
        }
    }
}

/// Flight-recorder events attached to a quarantine record (see
/// [`JobFailure::trace_tail`]).
pub const TRACE_TAIL_EVENTS: usize = 64;

/// Terminal failure after all attempts: the quarantine record.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// The last attempt's error message.
    pub error: String,
    /// Whether the last error was recoverable (true means retries were
    /// exhausted; false means the job was quarantined on first failure).
    pub recoverable: bool,
    /// Whether the advisory per-job time budget was exceeded.
    pub timed_out: bool,
    /// Flight-recorder dump: the last [`TRACE_TAIL_EVENTS`] trace events
    /// preceding quarantine, rendered as human-readable lines. Empty when
    /// tracing is disabled.
    pub trace_tail: Vec<String>,
}

/// One job's outcome as it leaves the pool.
#[derive(Debug, Clone)]
pub struct PoolRecord<O> {
    /// Job id (see [`PoolJob::id`]).
    pub id: usize,
    /// Job key (see [`PoolJob::key`]).
    pub key: String,
    /// Job label.
    pub label: String,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: usize,
    /// Wall-clock seconds spent on this job across attempts. Excluded
    /// from deterministic outputs.
    pub seconds: f64,
    /// Success payload or quarantined failure.
    pub outcome: Result<O, JobFailure>,
}

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Extra attempts after the first for recoverable errors.
    pub retries: usize,
    /// Base sleep between attempts, doubled each retry (0 disables).
    pub backoff: Duration,
    /// Advisory per-job time budget. Checked *between* attempts: an
    /// attempt always runs to completion (threads are never killed, so a
    /// wedged evaluation cannot be interrupted), but once the budget is
    /// spent no further retries happen and the failure is marked
    /// `timed_out`. `None` (the default) disables the budget; note that
    /// timeout classification depends on machine speed, so deterministic
    /// pipelines should leave it off.
    pub job_timeout: Option<Duration>,
    /// Cooperative cancellation.
    pub cancel: CancelFlag,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 1,
            retries: 1,
            backoff: Duration::from_millis(50),
            job_timeout: None,
            cancel: CancelFlag::new(),
        }
    }
}

/// Run `jobs` through a pool of `config.workers` threads.
///
/// `runner(job, attempt)` is called with a 0-based attempt index (so it
/// can reseed deterministically per attempt). `on_record` fires on the
/// calling thread for every completed record in *completion order* —
/// journaling hooks in here. The returned vector is sorted by job id.
///
/// Cancellation: once [`CancelFlag::cancel`] is observed, workers stop
/// picking up queued jobs; records for never-started jobs are simply
/// absent from the result.
pub fn run_pool<J, O, R, F>(
    jobs: Vec<PoolJob<J>>,
    config: &SchedulerConfig,
    runner: R,
    mut on_record: F,
) -> Vec<PoolRecord<O>>
where
    J: Send,
    O: Send,
    R: Fn(&PoolJob<J>, usize) -> Result<O, JobError> + Sync,
    F: FnMut(&PoolRecord<O>),
{
    let workers = config.workers.max(1);
    let n_jobs = jobs.len();
    let obs = crate::obsm::metrics();
    obs.workers.set(workers as f64);
    let obs_on = slim_obs::enabled();
    // check: allow(det-wallclock) feeds the pool utilization gauge only
    let pool_start = Instant::now();
    // Summed busy nanoseconds across workers, for the utilization gauge.
    let busy_total_ns = AtomicU64::new(0);
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<PoolJob<J>>();
    let (rec_tx, rec_rx) = crossbeam::channel::unbounded::<PoolRecord<O>>();
    for job in jobs {
        // Unbounded channel with both endpoints alive: send cannot fail.
        let _ = job_tx.send(job);
    }
    drop(job_tx);

    let runner = &runner;
    let busy_total = &busy_total_ns;
    let mut records: Vec<PoolRecord<O>> = Vec::with_capacity(n_jobs);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let rec_tx = rec_tx.clone();
            let config = config.clone();
            scope.spawn(move |_| {
                let mut busy = Duration::ZERO;
                for job in job_rx.iter() {
                    if config.cancel.is_cancelled() {
                        break;
                    }
                    let queue_wait = pool_start.elapsed();
                    if obs_on {
                        obs.queue_wait.observe(queue_wait);
                    }
                    let mut job_span = slim_trace::span("batch.job", "batch");
                    job_span.arg_u64("id", job.id as u64);
                    job_span.arg_str("key", &job.key);
                    job_span.arg_u64(
                        "queue_wait_us",
                        u64::try_from(queue_wait.as_micros()).unwrap_or(u64::MAX),
                    );
                    let record = run_one(&job, &config, runner);
                    job_span.arg_u64("attempts", record.attempts as u64);
                    job_span.arg_str(
                        "status",
                        if record.outcome.is_ok() {
                            "ok"
                        } else {
                            "quarantined"
                        },
                    );
                    drop(job_span);
                    let spent = Duration::from_secs_f64(record.seconds.max(0.0));
                    busy += spent;
                    obs.job_seconds.observe(spent);
                    match &record.outcome {
                        Ok(_) => obs.completed.inc(),
                        Err(_) => obs.failed.inc(),
                    }
                    obs.retries.add(record.attempts.saturating_sub(1) as u64);
                    if rec_tx.send(record).is_err() {
                        break;
                    }
                }
                obs.worker_busy.observe(busy);
                let busy_ns = u64::try_from(busy.as_nanos()).unwrap_or(u64::MAX);
                // check: allow(atomic-ordering) monotonic busy-time tally, only read after scope join
                busy_total.fetch_add(busy_ns, Ordering::Relaxed);
                // Scoped threads must drain their event buffer before the
                // scope unblocks (TLS destructors may run too late).
                if slim_trace::enabled() {
                    slim_trace::flush_thread();
                }
            });
        }
        drop(rec_tx);
        drop(job_rx);
        // Collector: the scope's calling thread, so `on_record` needs no
        // Send bound and observes records in completion order.
        for record in rec_rx.iter() {
            on_record(&record);
            records.push(record);
        }
    })
    .expect("batch worker panicked");
    let wall = pool_start.elapsed().as_secs_f64();
    if wall > 0.0 {
        // check: allow(atomic-ordering) scope join above synchronizes; counter is metrics-only
        let busy = busy_total_ns.load(Ordering::Relaxed) as f64 * 1e-9;
        obs.utilization
            .set((busy / (workers as f64 * wall)).clamp(0.0, 1.0));
    }
    records.sort_by_key(|r| r.id);
    records
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn run_one<J, O, R>(job: &PoolJob<J>, config: &SchedulerConfig, runner: &R) -> PoolRecord<O>
where
    R: Fn(&PoolJob<J>, usize) -> Result<O, JobError>,
{
    // check: allow(det-wallclock) feeds the per-job timeout + obs histogram only
    let started = Instant::now();
    let mut attempts = 0usize;
    let outcome = loop {
        let attempt = attempts; // 0-based index passed to the runner
        attempts += 1;
        let attempt_result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| runner(job, attempt)))
                .unwrap_or_else(|payload| {
                    // `&*payload`, not `&payload`: the Box itself is `Any`,
                    // and coercing it directly would hide the String inside.
                    Err(JobError::recoverable(format!(
                        "job panicked: {}",
                        panic_message(&*payload)
                    )))
                });
        match attempt_result {
            Ok(o) => break Ok(o),
            Err(e) => {
                let timed_out = config
                    .job_timeout
                    .is_some_and(|budget| started.elapsed() >= budget);
                let out_of_attempts = attempts > config.retries;
                if !e.recoverable || out_of_attempts || timed_out {
                    slim_trace::instant_with("batch.quarantine", "batch", || {
                        vec![
                            ("id", slim_trace::Value::U64(job.id as u64)),
                            ("attempts", slim_trace::Value::U64(attempts as u64)),
                            ("recoverable", slim_trace::Value::Bool(e.recoverable)),
                            ("timed_out", slim_trace::Value::Bool(timed_out)),
                        ]
                    });
                    // Flight-recorder dump: flush this worker's buffer so
                    // the tail includes the events leading up to failure.
                    let trace_tail = if slim_trace::enabled() {
                        slim_trace::flush_thread();
                        slim_trace::dump_lines(TRACE_TAIL_EVENTS)
                    } else {
                        Vec::new()
                    };
                    break Err(JobFailure {
                        error: e.message,
                        recoverable: e.recoverable,
                        timed_out,
                        trace_tail,
                    });
                }
                slim_trace::instant_with("batch.retry", "batch", || {
                    vec![
                        ("id", slim_trace::Value::U64(job.id as u64)),
                        ("attempt", slim_trace::Value::U64(attempts as u64)),
                    ]
                });
                if !config.backoff.is_zero() {
                    // Exponential backoff, capped to avoid overflow.
                    let factor = 1u32 << (attempt.min(10) as u32);
                    std::thread::sleep(config.backoff * factor);
                }
            }
        }
    };
    PoolRecord {
        id: job.id,
        key: job.key.clone(),
        label: job.label.clone(),
        attempts,
        seconds: started.elapsed().as_secs_f64(),
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn jobs(n: usize) -> Vec<PoolJob<usize>> {
        (0..n)
            .map(|i| PoolJob {
                id: i,
                key: format!("k{i}"),
                label: format!("j{i}"),
                payload: i,
            })
            .collect()
    }

    fn quick(workers: usize, retries: usize) -> SchedulerConfig {
        SchedulerConfig {
            workers,
            retries,
            backoff: Duration::ZERO,
            ..SchedulerConfig::default()
        }
    }

    #[test]
    fn results_sorted_by_id_any_worker_count() {
        for workers in [1, 4] {
            let recs = run_pool(
                jobs(20),
                &quick(workers, 0),
                |j, _| Ok(j.payload * 2),
                |_| {},
            );
            assert_eq!(recs.len(), 20);
            for (i, r) in recs.iter().enumerate() {
                assert_eq!(r.id, i);
                assert_eq!(*r.outcome.as_ref().unwrap(), i * 2);
                assert_eq!(r.attempts, 1);
            }
        }
    }

    #[test]
    fn recoverable_errors_retry_up_to_limit() {
        // Succeeds on the third attempt; job 5 never succeeds.
        let recs = run_pool(
            jobs(8),
            &quick(2, 3),
            |j, attempt| {
                if j.payload == 5 {
                    Err(JobError::recoverable("always fails"))
                } else if attempt < 2 {
                    Err(JobError::recoverable("transient"))
                } else {
                    Ok(j.payload)
                }
            },
            |_| {},
        );
        assert_eq!(recs.len(), 8);
        for r in &recs {
            if r.id == 5 {
                let f = r.outcome.as_ref().unwrap_err();
                assert_eq!(r.attempts, 4, "1 + retries attempts");
                assert!(f.recoverable);
                assert!(!f.timed_out);
            } else {
                assert!(r.outcome.is_ok());
                assert_eq!(r.attempts, 3);
            }
        }
    }

    #[test]
    fn fatal_errors_quarantine_immediately_without_hurting_siblings() {
        let calls = AtomicUsize::new(0);
        let recs = run_pool(
            jobs(6),
            &quick(3, 5),
            |j, _| {
                calls.fetch_add(1, Ordering::SeqCst);
                if j.payload == 2 {
                    Err(JobError::fatal("corrupt input"))
                } else {
                    Ok(j.payload)
                }
            },
            |_| {},
        );
        assert_eq!(recs.len(), 6);
        let bad = &recs[2];
        assert_eq!(bad.attempts, 1, "no retry for fatal errors");
        assert_eq!(bad.outcome.as_ref().unwrap_err().error, "corrupt input");
        assert_eq!(recs.iter().filter(|r| r.outcome.is_ok()).count(), 5);
        assert_eq!(calls.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn panicking_runner_is_quarantined_not_propagated() {
        let recs = run_pool(
            jobs(4),
            &quick(2, 1),
            |j, attempt| {
                if j.payload == 1 {
                    panic!("simulated numerical blow-up (attempt {attempt})");
                }
                Ok(j.payload)
            },
            |_| {},
        );
        assert_eq!(recs.len(), 4, "a panicking job must not abort the pool");
        let bad = &recs[1];
        assert_eq!(bad.attempts, 2, "panics count as recoverable: 1 + retries");
        let f = bad.outcome.as_ref().unwrap_err();
        assert!(f.error.contains("job panicked"), "{}", f.error);
        assert!(f.error.contains("simulated numerical blow-up (attempt 1)"));
        assert_eq!(recs.iter().filter(|r| r.outcome.is_ok()).count(), 3);
    }

    #[test]
    fn cancel_stops_pulling_new_jobs() {
        let config = quick(1, 0);
        let cancel = config.cancel.clone();
        let calls = AtomicUsize::new(0);
        let recs = run_pool(
            jobs(10),
            &config,
            |j, _| {
                if calls.fetch_add(1, Ordering::SeqCst) + 1 == 3 {
                    cancel.cancel(); // set mid-run, as an observer would
                }
                Ok(j.payload)
            },
            |_| {},
        );
        // One worker: the in-flight third job completes, nothing after it
        // starts.
        assert_eq!(recs.len(), 3);
        assert_eq!(recs.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn timeout_suppresses_retries_and_marks_record() {
        let config = SchedulerConfig {
            workers: 1,
            retries: 10,
            backoff: Duration::ZERO,
            job_timeout: Some(Duration::from_millis(1)),
            cancel: CancelFlag::new(),
        };
        let recs = run_pool(
            jobs(1),
            &config,
            |_, _| -> Result<usize, JobError> {
                std::thread::sleep(Duration::from_millis(5));
                Err(JobError::recoverable("slow and failing"))
            },
            |_| {},
        );
        let f = recs[0].outcome.as_ref().unwrap_err();
        assert_eq!(recs[0].attempts, 1);
        assert!(f.timed_out);
    }

    #[test]
    fn quarantined_jobs_carry_flight_recorder_dump() {
        // With tracing enabled, a terminal failure must attach the last
        // flight-recorder events to its quarantine record.
        slim_trace::set_enabled(true);
        slim_trace::clear();
        let recs = run_pool(
            jobs(2),
            &quick(1, 1),
            |j, _| {
                if j.payload == 1 {
                    Err(JobError::recoverable("always fails"))
                } else {
                    Ok(j.payload)
                }
            },
            |_| {},
        );
        slim_trace::set_enabled(false);
        let f = recs[1].outcome.as_ref().unwrap_err();
        assert!(!f.trace_tail.is_empty(), "dump must not be empty");
        assert!(
            f.trace_tail.iter().any(|l| l.contains("batch.quarantine")),
            "dump should include the quarantine instant: {:?}",
            f.trace_tail
        );
        assert!(recs[0].outcome.is_ok(), "sibling job unaffected");
    }

    #[test]
    fn collector_sees_every_record_once() {
        let mut keys = Vec::new();
        let recs = run_pool(
            jobs(12),
            &quick(4, 0),
            |j, _| Ok(j.payload),
            |r| keys.push(r.key.clone()),
        );
        assert_eq!(recs.len(), 12);
        keys.sort();
        let mut expect: Vec<String> = (0..12).map(|i| format!("k{i}")).collect();
        expect.sort();
        assert_eq!(keys, expect);
    }
}
