//! Append-only JSONL checkpoint journal.
//!
//! Line 1 is a header binding the journal to a manifest fingerprint;
//! every further line is one completed job record, flushed as it is
//! written so a killed run loses at most the line being written. On
//! `--resume`, records are matched to the fresh manifest expansion by
//! job *key* and the remaining jobs run; a truncated final line (the
//! crash case) is tolerated and dropped.

use crate::aggregate::BatchRecord;
use crate::jsonio::{esc, Obj};
use crate::runner::JobOutcome;
use crate::scheduler::JobFailure;
use crate::{BatchError, Result};
use serde_json::Value;
use std::io::Write;
use std::path::Path;

const JOURNAL_VERSION: u64 = 1;

/// Writes the header and streams records, flushing each line.
#[derive(Debug)]
pub struct JournalWriter {
    file: std::fs::File,
}

impl JournalWriter {
    /// Start a fresh journal (truncating any existing file) bound to
    /// `fingerprint`.
    ///
    /// # Errors
    /// [`BatchError::Journal`] on IO failure.
    pub fn create(path: &Path, fingerprint: u64) -> Result<JournalWriter> {
        let mut file = std::fs::File::create(path)
            .map_err(|e| BatchError::Journal(format!("cannot create {}: {e}", path.display())))?;
        let header = format!(
            "{{\"slim_batch_journal\":{JOURNAL_VERSION},\"manifest_fp\":{}}}\n",
            esc(&format!("{fingerprint:016x}"))
        );
        file.write_all(header.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| BatchError::Journal(format!("cannot write {}: {e}", path.display())))?;
        Ok(JournalWriter { file })
    }

    /// Re-open an existing journal for appending (resume). The caller is
    /// expected to have validated the header via [`read_journal`].
    ///
    /// # Errors
    /// [`BatchError::Journal`] on IO failure.
    pub fn append(path: &Path) -> Result<JournalWriter> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| BatchError::Journal(format!("cannot open {}: {e}", path.display())))?;
        Ok(JournalWriter { file })
    }

    /// Append one record and flush.
    ///
    /// # Errors
    /// [`BatchError::Journal`] on IO failure.
    pub fn record(&mut self, rec: &BatchRecord) -> Result<()> {
        let line = encode_record(rec);
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| BatchError::Journal(format!("cannot append record: {e}")))
    }
}

fn encode_record(rec: &BatchRecord) -> String {
    let mut o = Obj::new();
    o.u64("id", rec.id as u64)
        .str("key", &rec.key)
        .str("label", &rec.label)
        .u64("attempts", rec.attempts as u64)
        .f64("seconds", rec.seconds);
    match &rec.outcome {
        Ok(out) => {
            o.str("status", "done");
            o.raw("outcome", encode_outcome(out));
        }
        Err(f) => {
            o.str("status", "failed");
            o.str("error", &f.error);
            o.bool("recoverable", f.recoverable);
            o.bool("timed_out", f.timed_out);
            if !f.trace_tail.is_empty() {
                // Flight-recorder dump (omitted when empty so journals
                // written with tracing off match the pre-trace format).
                let items: Vec<String> = f.trace_tail.iter().map(|l| esc(l)).collect();
                o.raw("trace_tail", format!("[{}]", items.join(",")));
            }
        }
    }
    let mut line = o.finish();
    line.push('\n');
    line
}

fn encode_outcome(out: &JobOutcome) -> String {
    let mut o = Obj::new();
    o.f64("lnl0", out.lnl0)
        .f64("lnl1", out.lnl1)
        .f64("stat", out.stat)
        .f64("p_value", out.p_value)
        .f64("kappa", out.kappa)
        .f64("omega0", out.omega0)
        .f64("omega2", out.omega2)
        .f64("p0", out.p0)
        .f64("p1", out.p1)
        .u64("n_pos_sites", out.n_pos_sites as u64)
        .u64("iterations", out.iterations as u64)
        .u64("cache_hits", out.cache_hits)
        .u64("cache_misses", out.cache_misses);
    o.finish()
}

fn req_f64(v: &Value, key: &str) -> Result<f64> {
    match v.get(key) {
        Some(x) if x.is_null() => Ok(f64::NAN),
        Some(x) => x
            .as_f64()
            .ok_or_else(|| BatchError::Journal(format!("record field {key:?} is not a number"))),
        None => Err(BatchError::Journal(format!("record missing field {key:?}"))),
    }
}

fn req_u64(v: &Value, key: &str) -> Result<u64> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| BatchError::Journal(format!("record missing integer field {key:?}")))
}

fn req_str<'a>(v: &'a Value, key: &str) -> Result<&'a str> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| BatchError::Journal(format!("record missing string field {key:?}")))
}

fn decode_record(v: &Value) -> Result<BatchRecord> {
    let status = req_str(v, "status")?;
    let outcome = match status {
        "done" => {
            let out = v
                .get("outcome")
                .ok_or_else(|| BatchError::Journal("done record missing \"outcome\"".into()))?;
            Ok(JobOutcome {
                lnl0: req_f64(out, "lnl0")?,
                lnl1: req_f64(out, "lnl1")?,
                stat: req_f64(out, "stat")?,
                p_value: req_f64(out, "p_value")?,
                kappa: req_f64(out, "kappa")?,
                omega0: req_f64(out, "omega0")?,
                omega2: req_f64(out, "omega2")?,
                p0: req_f64(out, "p0")?,
                p1: req_f64(out, "p1")?,
                n_pos_sites: req_u64(out, "n_pos_sites")? as usize,
                iterations: req_u64(out, "iterations")? as usize,
                // Added in a later revision of journal v1: absent in
                // journals written before cache accounting existed.
                cache_hits: out.get("cache_hits").and_then(Value::as_u64).unwrap_or(0),
                cache_misses: out.get("cache_misses").and_then(Value::as_u64).unwrap_or(0),
            })
        }
        "failed" => Err(JobFailure {
            error: req_str(v, "error")?.to_string(),
            recoverable: v
                .get("recoverable")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            timed_out: v.get("timed_out").and_then(Value::as_bool).unwrap_or(false),
            // Added with the flight recorder: absent in older journals.
            trace_tail: v
                .get("trace_tail")
                .and_then(Value::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(Value::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default(),
        }),
        other => {
            return Err(BatchError::Journal(format!(
                "unknown record status {other:?}"
            )));
        }
    };
    Ok(BatchRecord {
        id: req_u64(v, "id")? as usize,
        key: req_str(v, "key")?.to_string(),
        label: req_str(v, "label")?.to_string(),
        attempts: req_u64(v, "attempts")? as usize,
        seconds: req_f64(v, "seconds")?,
        outcome,
        from_journal: true,
    })
}

/// Read a journal back: validate the header against `expected_fp`, decode
/// records, and tolerate a truncated final line (a crash mid-write).
///
/// # Errors
/// [`BatchError::Journal`] on IO failure, header/fingerprint mismatch, or
/// a malformed record before the final line.
pub fn read_journal(path: &Path, expected_fp: u64) -> Result<Vec<BatchRecord>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| BatchError::Journal(format!("cannot read {}: {e}", path.display())))?;
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines
        .next()
        .ok_or_else(|| BatchError::Journal(format!("{}: empty journal", path.display())))?;
    let header: Value = serde_json::from_str(header_line)
        .map_err(|e| BatchError::Journal(format!("bad journal header: {e}")))?;
    let version = header
        .get("slim_batch_journal")
        .and_then(Value::as_u64)
        .ok_or_else(|| BatchError::Journal("not a slim-batch journal".into()))?;
    if version != JOURNAL_VERSION {
        return Err(BatchError::Journal(format!(
            "unsupported journal version {version}"
        )));
    }
    let fp = header
        .get("manifest_fp")
        .and_then(Value::as_str)
        .ok_or_else(|| BatchError::Journal("journal header missing manifest_fp".into()))?;
    if fp != format!("{expected_fp:016x}") {
        return Err(BatchError::Journal(format!(
            "journal was written for a different manifest (fp {fp}, expected {expected_fp:016x}); \
             re-run without --resume to start fresh"
        )));
    }

    let rest: Vec<(usize, &str)> = lines.filter(|(_, l)| !l.trim().is_empty()).collect();
    let mut records = Vec::with_capacity(rest.len());
    for (pos, (lineno, line)) in rest.iter().enumerate() {
        match serde_json::from_str::<Value>(line)
            .map_err(|e| e.to_string())
            .and_then(|v| decode_record(&v).map_err(|e| e.to_string()))
        {
            Ok(rec) => records.push(rec),
            Err(e) if pos + 1 == rest.len() => {
                // Truncated tail from a crash mid-write: drop it; the job
                // will simply re-run.
                let _ = e;
                break;
            }
            Err(e) => {
                return Err(BatchError::Journal(format!(
                    "{} line {}: {e}",
                    path.display(),
                    lineno + 1
                )));
            }
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: usize, key: &str, ok: bool) -> BatchRecord {
        BatchRecord {
            id,
            key: key.to_string(),
            label: format!("L{id}"),
            attempts: 2,
            seconds: 0.25,
            outcome: if ok {
                Ok(JobOutcome {
                    lnl0: -1234.567890123,
                    lnl1: -1230.1,
                    stat: 8.935780246,
                    p_value: 0.0028,
                    kappa: 2.1,
                    omega0: 0.07,
                    omega2: 3.5,
                    p0: 0.8,
                    p1: 0.15,
                    n_pos_sites: 3,
                    iterations: 120,
                    cache_hits: 55,
                    cache_misses: 11,
                })
            } else {
                Err(JobFailure {
                    error: "boom with \"quotes\"\nand newline".into(),
                    recoverable: true,
                    timed_out: false,
                    trace_tail: vec![
                        "+12us t3 i batch.retry id=1".into(),
                        "+40us t3 i batch.quarantine id=1".into(),
                    ],
                })
            },
            from_journal: false,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("slim_batch_journal_{}_{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_including_failures() {
        let path = tmp("roundtrip.jsonl");
        let mut w = JournalWriter::create(&path, 0xdead_beef).unwrap();
        w.record(&record(0, "g:1", true)).unwrap();
        w.record(&record(1, "g:2", false)).unwrap();
        drop(w);
        let recs = read_journal(&path, 0xdead_beef).unwrap();
        assert_eq!(recs.len(), 2);
        let out = recs[0].outcome.as_ref().unwrap();
        assert_eq!(out.lnl0, -1234.567890123, "floats roundtrip exactly");
        assert_eq!(out.n_pos_sites, 3);
        assert_eq!((out.cache_hits, out.cache_misses), (55, 11));
        let f = recs[1].outcome.as_ref().unwrap_err();
        assert!(f.error.contains("\"quotes\"\nand newline"));
        assert!(f.recoverable);
        assert_eq!(f.trace_tail.len(), 2, "flight-recorder dump roundtrips");
        assert_eq!(f.trace_tail[1], "+40us t3 i batch.quarantine id=1");
        assert!(recs.iter().all(|r| r.from_journal));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_mismatch_rejected() {
        let path = tmp("fp.jsonl");
        let w = JournalWriter::create(&path, 1).unwrap();
        drop(w);
        let err = read_journal(&path, 2).unwrap_err().to_string();
        assert!(err.contains("different manifest"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_tolerated_midfile_corruption_rejected() {
        let path = tmp("trunc.jsonl");
        let mut w = JournalWriter::create(&path, 7).unwrap();
        w.record(&record(0, "g:1", true)).unwrap();
        drop(w);
        // Simulate a crash mid-write of the second record.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"id\":1,\"key\":\"g:2\",\"at");
        std::fs::write(&path, &text).unwrap();
        let recs = read_journal(&path, 7).unwrap();
        assert_eq!(recs.len(), 1);

        // Same garbage NOT at the tail is a hard error.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(1, "{\"id\":1,\"key\":\"g:2\",\"at");
        let corrupted = lines.join("\n");
        std::fs::write(&path, corrupted).unwrap();
        assert!(read_journal(&path, 7).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pre_cache_journals_still_decode() {
        // A record written before cache accounting existed (no
        // cache_hits/cache_misses in "outcome") must decode with zeros.
        let path = tmp("precache.jsonl");
        let w = JournalWriter::create(&path, 3).unwrap();
        drop(w);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str(
            "{\"id\":0,\"key\":\"g:1\",\"label\":\"L0\",\"attempts\":1,\"seconds\":0.1,\
             \"status\":\"done\",\"outcome\":{\"lnl0\":-10.0,\"lnl1\":-9.0,\"stat\":2.0,\
             \"p_value\":0.1,\"kappa\":2.0,\"omega0\":0.1,\"omega2\":2.0,\"p0\":0.7,\
             \"p1\":0.2,\"n_pos_sites\":0,\"iterations\":5}}\n",
        );
        std::fs::write(&path, &text).unwrap();
        let recs = read_journal(&path, 3).unwrap();
        let out = recs[0].outcome.as_ref().unwrap();
        assert_eq!((out.cache_hits, out.cache_misses), (0, 0));
        assert_eq!(out.cache_hit_rate(), 0.0, "0/0 lookups is 0.0, not NaN");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_continues_existing_file() {
        let path = tmp("append.jsonl");
        let mut w = JournalWriter::create(&path, 9).unwrap();
        w.record(&record(0, "g:1", true)).unwrap();
        drop(w);
        let mut w = JournalWriter::append(&path).unwrap();
        w.record(&record(1, "g:2", true)).unwrap();
        drop(w);
        let recs = read_journal(&path, 9).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].key, "g:2");
        std::fs::remove_file(&path).ok();
    }
}
