//! The per-job workload: one H0/H1 positive-selection test.
//!
//! This is the bridge between the generic [`crate::scheduler`] and
//! `slim-core`: it classifies `CoreError`s into recoverable vs fatal
//! (retrying an unreadable alignment is pointless; retrying a
//! non-finite likelihood with a jittered restart often works), and
//! perturbs the RNG seed per attempt so a retry explores a different
//! start point instead of deterministically re-failing.

use crate::manifest::{JobInput, JobPayload};
use crate::scheduler::{JobError, JobFailure, PoolJob, SchedulerConfig};
use slim_bio::{CodonAlignment, NodeId, Tree};
use slim_core::{Analysis, AnalysisOptions, CoreError, TestResult};

/// Posterior-probability threshold for counting a site as positively
/// selected (NEB, matching CodeML's reporting convention).
pub const POSITIVE_SITE_THRESHOLD: f64 = 0.95;

/// Seed perturbation stride between retry attempts (a prime, so
/// distinct attempts of distinct jobs never collide by accident).
const ATTEMPT_SEED_STRIDE: u64 = 7919;

/// The numbers a batch run keeps from one positive-selection test.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Null-model log-likelihood (ω2 = 1).
    pub lnl0: f64,
    /// Alternative-model log-likelihood (ω2 free).
    pub lnl1: f64,
    /// LRT statistic 2(lnL1 − lnL0).
    pub stat: f64,
    /// LRT p-value.
    pub p_value: f64,
    /// H1 transition/transversion ratio.
    pub kappa: f64,
    /// H1 purifying omega.
    pub omega0: f64,
    /// H1 foreground positive-selection omega.
    pub omega2: f64,
    /// H1 proportion of purifying sites.
    pub p0: f64,
    /// H1 proportion of neutral sites.
    pub p1: f64,
    /// Sites with NEB posterior > [`POSITIVE_SITE_THRESHOLD`].
    pub n_pos_sites: usize,
    /// Total optimizer iterations (H0 + H1).
    pub iterations: usize,
    /// Eigendecomposition-cache hits across the whole analysis (0 when
    /// the backend runs without a cache).
    pub cache_hits: u64,
    /// Eigendecomposition-cache misses across the whole analysis.
    pub cache_misses: u64,
}

impl JobOutcome {
    /// Hits / (hits + misses). Defined as 0.0 — never NaN — when the
    /// job performed no lookups (the backend ran without a cache), so
    /// every sink can emit the value unguarded.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total > 0 {
            self.cache_hits as f64 / total as f64
        } else {
            0.0
        }
    }

    fn from_test(result: &TestResult, cache: (u64, u64)) -> JobOutcome {
        let m = &result.h1.model;
        JobOutcome {
            lnl0: result.h0.lnl,
            lnl1: result.h1.lnl,
            stat: result.lrt.statistic,
            p_value: result.lrt.p_value,
            kappa: m.kappa,
            omega0: m.omega0,
            omega2: m.omega2,
            p0: m.p0,
            p1: m.p1,
            n_pos_sites: result
                .site_posteriors
                .iter()
                .filter(|&&p| p > POSITIVE_SITE_THRESHOLD)
                .count(),
            iterations: result.h0.iterations + result.h1.iterations,
            cache_hits: cache.0,
            cache_misses: cache.1,
        }
    }
}

fn classify(e: &CoreError) -> JobError {
    match e {
        // Bad input stays bad input: never retry.
        CoreError::Bio(_) => JobError::fatal(e.to_string()),
        // Numerical hiccups are start-point dependent; a jittered
        // restart is worth the retry budget.
        CoreError::Linalg(_) | CoreError::Optimization(_) => JobError::recoverable(e.to_string()),
    }
}

/// Run one job: fit H0 and H1 for the payload's foreground branch.
///
/// `attempt` is 0-based; retries perturb the RNG seed so the jittered
/// multi-start optimizer explores a different start point each time.
///
/// # Errors
/// [`JobError::fatal`] for poisoned payloads and input errors,
/// [`JobError::recoverable`] for numerical failures and non-finite
/// likelihoods.
pub fn run_analysis_job(job: &PoolJob<JobPayload>, attempt: usize) -> Result<JobOutcome, JobError> {
    let (tree, aln, branch) = match &job.payload.input {
        JobInput::Ready { tree, aln, branch } => (tree, aln, *branch),
        JobInput::Poisoned { error } => return Err(JobError::fatal(error.clone())),
    };
    let mut options = job.payload.options.clone();
    options.seed = options
        .seed
        .wrapping_add(ATTEMPT_SEED_STRIDE * attempt as u64);
    fit_one(tree, aln, branch, options)
}

fn fit_one(
    tree: &Tree,
    aln: &CodonAlignment,
    branch: NodeId,
    options: AnalysisOptions,
) -> Result<JobOutcome, JobError> {
    let analysis =
        Analysis::with_foreground(tree, branch, aln, options).map_err(|e| classify(&e))?;
    let result = analysis
        .test_positive_selection()
        .map_err(|e| classify(&e))?;
    if !result.h0.lnl.is_finite() || !result.h1.lnl.is_finite() {
        return Err(JobError::recoverable(format!(
            "non-finite log-likelihood (lnL0 = {}, lnL1 = {})",
            result.h0.lnl, result.h1.lnl
        )));
    }
    let cache = analysis.eigen_cache_stats().unwrap_or((0, 0));
    Ok(JobOutcome::from_test(&result, cache))
}

/// One branch's result from [`scan_branches`].
#[derive(Debug, Clone)]
pub struct ScanEntry {
    /// The foreground branch (child-node ID).
    pub branch: NodeId,
    /// Leaf name if the branch subtends a leaf.
    pub child_name: Option<String>,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: usize,
    /// The fit, or why it failed after all retries.
    pub outcome: Result<JobOutcome, JobFailure>,
}

/// Pooled replacement for `slim_core::scan_all_branches`: test every
/// branch of `tree` as foreground, fanned across the scheduler's worker
/// pool with its retry policy. Entries come back in arena branch order
/// regardless of completion order.
pub fn scan_branches(
    tree: &Tree,
    aln: &CodonAlignment,
    options: &AnalysisOptions,
    config: &SchedulerConfig,
) -> Vec<ScanEntry> {
    let shared_tree = std::sync::Arc::new(tree.clone());
    let shared_aln = std::sync::Arc::new(aln.clone());
    let jobs: Vec<PoolJob<JobPayload>> = tree
        .branch_nodes()
        .into_iter()
        .enumerate()
        .map(|(id, branch)| {
            let label = match tree.node(branch).name.as_deref() {
                Some(name) => format!("scan:{name}"),
                None => format!("scan:node{}", branch.0),
            };
            PoolJob {
                id,
                key: format!("scan:{}", branch.0),
                label,
                payload: JobPayload {
                    gene_id: "scan".to_string(),
                    input: JobInput::Ready {
                        tree: shared_tree.clone(),
                        aln: shared_aln.clone(),
                        branch,
                    },
                    options: options.clone(),
                },
            }
        })
        .collect();
    let branches = tree.branch_nodes();
    let records = crate::scheduler::run_pool(jobs, config, run_analysis_job, |_| {});
    records
        .into_iter()
        .map(|rec| {
            let branch = branches[rec.id];
            ScanEntry {
                branch,
                child_name: tree.node(branch).name.clone(),
                attempts: rec.attempts,
                outcome: rec.outcome,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_bio::parse_newick;
    use slim_core::Backend;
    use std::sync::Arc;

    fn small_dataset() -> (Tree, CodonAlignment) {
        let tree = parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
        let aln = CodonAlignment::from_fasta(
            ">A\nATGCCCAAATGGTTT\n>B\nATGCCAAAATGGTTC\n>C\nATGCCCAAATGGTTT\n",
        )
        .unwrap();
        (tree, aln)
    }

    fn fast_options() -> AnalysisOptions {
        AnalysisOptions {
            backend: Backend::Slim,
            max_iterations: 60,
            ..AnalysisOptions::default()
        }
    }

    fn ready_job(tree: &Tree, aln: &CodonAlignment, branch: NodeId) -> PoolJob<JobPayload> {
        PoolJob {
            id: 0,
            key: "g:0".into(),
            label: "g:A".into(),
            payload: JobPayload {
                gene_id: "g".into(),
                input: JobInput::Ready {
                    tree: Arc::new(tree.clone()),
                    aln: Arc::new(aln.clone()),
                    branch,
                },
                options: fast_options(),
            },
        }
    }

    #[test]
    fn poisoned_job_fails_fatally() {
        let job = PoolJob {
            id: 0,
            key: "g:*".into(),
            label: "g".into(),
            payload: JobPayload {
                gene_id: "g".into(),
                input: JobInput::Poisoned {
                    error: "cannot read alignment".into(),
                },
                options: fast_options(),
            },
        };
        let err = run_analysis_job(&job, 0).unwrap_err();
        assert!(!err.recoverable);
        assert!(err.message.contains("cannot read alignment"));
    }

    #[test]
    fn ready_job_produces_finite_outcome() {
        let (tree, aln) = small_dataset();
        let branch = tree.leaf_by_name("A").unwrap();
        let job = ready_job(&tree, &aln, branch);
        let out = run_analysis_job(&job, 0).unwrap();
        assert!(out.lnl0.is_finite() && out.lnl1.is_finite());
        assert!(out.lnl1 >= out.lnl0 - 1e-6, "H1 nests H0");
        assert!((0.0..=1.0).contains(&out.p_value));
        assert!(out.iterations > 0);
    }

    #[test]
    fn retry_attempt_changes_seed_not_validity() {
        // The same job on a later attempt must still converge to the
        // same optimum (different start, same surface).
        let (tree, aln) = small_dataset();
        let branch = tree.leaf_by_name("A").unwrap();
        let job = ready_job(&tree, &aln, branch);
        let a = run_analysis_job(&job, 0).unwrap();
        let b = run_analysis_job(&job, 2).unwrap();
        // The 5-codon toy surface has near-degenerate local optima a few
        // 1e-3 apart; different starts may settle in either basin.
        assert!((a.lnl1 - b.lnl1).abs() < 1e-2, "{} vs {}", a.lnl1, b.lnl1);
    }

    #[test]
    fn scan_branches_matches_sequential_scan() {
        let (tree, aln) = small_dataset();
        let options = fast_options();
        let config = SchedulerConfig {
            workers: 2,
            ..SchedulerConfig::default()
        };
        let pooled = scan_branches(&tree, &aln, &options, &config);
        let sequential = slim_core::scan_all_branches(&tree, &aln, &options).unwrap();
        assert_eq!(pooled.len(), sequential.len());
        for (p, s) in pooled.iter().zip(&sequential) {
            assert_eq!(p.branch, s.branch);
            let out = p.outcome.as_ref().expect("scan job should fit");
            assert!((out.lnl1 - s.result.h1.lnl).abs() < 1e-6);
            assert!((out.lnl0 - s.result.h0.lnl).abs() < 1e-6);
        }
    }
}
