//! slim-obs handles for the batch worker pool.

use slim_obs::{Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};

#[derive(Debug)]
pub(crate) struct BatchMetrics {
    /// `batch.jobs.completed` — jobs that ended in success.
    pub completed: Arc<Counter>,
    /// `batch.jobs.failed` — jobs quarantined after all attempts.
    pub failed: Arc<Counter>,
    /// `batch.jobs.retries` — extra attempts beyond each job's first.
    pub retries: Arc<Counter>,
    /// `batch.job_seconds` — per-job wall time across attempts.
    pub job_seconds: Arc<Histogram>,
    /// `batch.queue_wait_seconds` — time from pool start to job pickup.
    pub queue_wait: Arc<Histogram>,
    /// `batch.worker_busy_seconds` — per-worker time inside jobs (one
    /// observation per worker per pool run).
    pub worker_busy: Arc<Histogram>,
    /// `batch.pool.workers` — worker threads of the last pool run.
    pub workers: Arc<Gauge>,
    /// `batch.pool.utilization` — Σ worker busy / (workers × pool wall)
    /// of the last pool run, in [0, 1].
    pub utilization: Arc<Gauge>,
}

static M: OnceLock<BatchMetrics> = OnceLock::new();

pub(crate) fn metrics() -> &'static BatchMetrics {
    M.get_or_init(|| BatchMetrics {
        completed: slim_obs::counter("batch.jobs.completed"),
        failed: slim_obs::counter("batch.jobs.failed"),
        retries: slim_obs::counter("batch.jobs.retries"),
        job_seconds: slim_obs::histogram("batch.job_seconds"),
        queue_wait: slim_obs::histogram("batch.queue_wait_seconds"),
        worker_busy: slim_obs::histogram("batch.worker_busy_seconds"),
        workers: slim_obs::gauge("batch.pool.workers"),
        utilization: slim_obs::gauge("batch.pool.utilization"),
    })
}

/// Eagerly register every batch metric name so snapshots are
/// schema-stable even before the first pool run.
pub fn register_metrics() {
    let _ = metrics();
}
