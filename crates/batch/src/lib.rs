//! # slim-batch
//!
//! Multi-gene batch orchestration for the branch-site positive-selection
//! test — the Selectome-style workload that motivates the paper: "this is
//! done iteratively for each branch of a phylogenetic tree", over
//! thousands of gene families per release (§I-A).
//!
//! The subsystem has four layers:
//!
//! * [`manifest`] — a JSON job manifest listing gene families (alignment,
//!   tree, genetic code, branches to test, backend, options), validated
//!   and expanded into a deterministic job list.
//! * [`scheduler`] — a worker pool over crossbeam channels fanning the
//!   H0/H1 fits across N threads, with bounded retry (reseeded jitter)
//!   for recoverable errors and quarantine for poisoned jobs.
//! * [`journal`] — an append-only JSONL checkpoint enabling `--resume`
//!   after interruption.
//! * [`aggregate`] — merged results sorted by job id (deterministic
//!   regardless of completion order) plus TSV/JSON writers.
//!
//! Determinism contract: for a given manifest, the TSV report and the
//! timing-free JSON report are byte-identical regardless of worker count,
//! completion order, or whether the run was interrupted and resumed.

pub mod aggregate;
pub mod journal;
pub mod jsonio;
pub mod manifest;
mod obsm;
pub mod runner;
pub mod scheduler;

pub use aggregate::{BatchRecord, BatchReport, RecordStatus, RunSummary};
pub use journal::{read_journal, JournalWriter};
pub use manifest::{BatchManifest, BranchRef, BranchSpec, JobInput, JobPayload, ManifestEntry};
pub use obsm::register_metrics;
pub use runner::{run_analysis_job, scan_branches, JobOutcome, ScanEntry};
pub use scheduler::{
    run_pool, CancelFlag, JobError, JobFailure, PoolJob, PoolRecord, SchedulerConfig,
};

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Errors from the batch layer. Per-job failures are *not* errors — they
/// are captured in the records; this type covers problems with the batch
/// itself (manifest, journal, output IO).
#[derive(Debug)]
pub enum BatchError {
    /// Manifest parse/validation problem.
    Manifest(String),
    /// Journal read/write problem.
    Journal(String),
    /// Other file IO problem.
    Io(String),
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Manifest(m) => write!(f, "manifest error: {m}"),
            BatchError::Journal(m) => write!(f, "journal error: {m}"),
            BatchError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for BatchError {}

/// Result alias for the batch layer.
pub type Result<T> = std::result::Result<T, BatchError>;

/// Configuration for one `run_batch` invocation (the CLI's view).
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Extra attempts per job after the first, for recoverable errors.
    pub retries: usize,
    /// Continue from an existing journal instead of starting fresh.
    pub resume: bool,
    /// Path of the JSONL checkpoint journal.
    pub journal_path: PathBuf,
    /// Base backoff between retry attempts (doubled per attempt).
    pub backoff: Duration,
    /// Advisory per-job time budget; see [`SchedulerConfig::job_timeout`].
    pub job_timeout: Option<Duration>,
    /// Cooperative cancellation flag shared with the caller.
    pub cancel: CancelFlag,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            workers: 1,
            retries: 1,
            resume: false,
            journal_path: PathBuf::from("slim_batch.journal.jsonl"),
            backoff: Duration::from_millis(50),
            job_timeout: None,
            cancel: CancelFlag::new(),
        }
    }
}

/// Run a manifest end to end: parse, expand, schedule, journal, merge.
///
/// # Errors
/// [`BatchError`] on manifest or journal problems. Per-job failures are
/// captured in the returned records, never escalated.
pub fn run_batch(manifest_path: &Path, config: &RunConfig) -> Result<BatchReport> {
    run_batch_with(manifest_path, config, |_| {})
}

/// Like [`run_batch`] with an observer called for every freshly completed
/// job record (in completion order, before merging). The observer may set
/// the cancel flag to stop the run early; already-journaled records are
/// not replayed through it.
///
/// # Errors
/// See [`run_batch`].
pub fn run_batch_with<F>(
    manifest_path: &Path,
    config: &RunConfig,
    mut observer: F,
) -> Result<BatchReport>
where
    F: FnMut(&BatchRecord),
{
    // check: allow(det-wallclock) feeds the obs run-duration histogram only
    let started = Instant::now();
    let text = std::fs::read_to_string(manifest_path).map_err(|e| {
        BatchError::Io(format!(
            "cannot read manifest {}: {e}",
            manifest_path.display()
        ))
    })?;
    let manifest = BatchManifest::parse(&text)?;
    let fingerprint = manifest.fingerprint();
    let base_dir = manifest_path.parent().unwrap_or_else(|| Path::new("."));
    let jobs = manifest.expand(base_dir);
    let total = jobs.len();

    // Load or create the journal.
    let mut prior: Vec<BatchRecord> = Vec::new();
    if config.resume && config.journal_path.exists() {
        let loaded = read_journal(&config.journal_path, fingerprint)?;
        // Re-key against the current expansion: ids are reassigned from
        // the manifest (same fingerprint ⇒ same expansion), stray keys
        // are dropped.
        // BTreeMap, not HashMap: nothing here iterates, but keeping the
        // journal/aggregation paths hash-free makes the determinism
        // contract auditable at a glance (slim-check det-hash-iter).
        let id_of: std::collections::BTreeMap<&str, usize> =
            jobs.iter().map(|j| (j.key.as_str(), j.id)).collect();
        for mut rec in loaded {
            if let Some(&id) = id_of.get(rec.key.as_str()) {
                rec.id = id;
                rec.from_journal = true;
                prior.push(rec);
            }
        }
    }
    let mut writer = if config.resume && config.journal_path.exists() {
        JournalWriter::append(&config.journal_path)?
    } else {
        JournalWriter::create(&config.journal_path, fingerprint)?
    };

    let done_keys: std::collections::BTreeSet<&str> =
        prior.iter().map(|r| r.key.as_str()).collect();
    let to_run: Vec<PoolJob<JobPayload>> = jobs
        .into_iter()
        .filter(|j| !done_keys.contains(j.key.as_str()))
        .collect();

    let sched = SchedulerConfig {
        workers: config.workers,
        retries: config.retries,
        backoff: config.backoff,
        job_timeout: config.job_timeout,
        cancel: config.cancel.clone(),
    };
    let mut journal_error: Option<BatchError> = None;
    let fresh = run_pool(to_run, &sched, run_analysis_job, |rec| {
        let brec = BatchRecord::from_pool(rec);
        if journal_error.is_none() {
            if let Err(e) = writer.record(&brec) {
                journal_error = Some(e);
            }
        }
        observer(&brec);
    });
    if let Some(e) = journal_error {
        return Err(e);
    }

    let mut records = prior;
    records.extend(fresh.iter().map(BatchRecord::from_pool));
    Ok(BatchReport::from_records(
        records,
        total,
        started.elapsed().as_secs_f64(),
    ))
}
