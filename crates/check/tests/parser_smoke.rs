//! Workspace smoke test: the recursive-descent parser must accept every
//! `.rs` file in the repository (including tests, benches, and vendored
//! stand-ins — anything the lexer can blank, the parser must tree).

use std::fs;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn every_workspace_file_parses() {
    let root = workspace_root();
    let sources = slim_check::collect_sources(&root).expect("collect sources");
    assert!(
        sources.len() > 50,
        "suspiciously few sources: {}",
        sources.len()
    );
    let mut failures = Vec::new();
    let mut fn_total = 0usize;
    for path in &sources {
        let rel = slim_check::relative_name(&root, path);
        let source = fs::read_to_string(path).expect("read source");
        match slim_check::parser::parse_file(&source) {
            Ok(file) => fn_total += count_fns(&file.items),
            Err(e) => failures.push(format!("{rel}: {e}")),
        }
    }
    assert!(
        failures.is_empty(),
        "parser rejected {} file(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
    // The workspace has hundreds of functions; a collapse here means
    // the item parser is silently skipping swathes of code.
    assert!(fn_total > 500, "only {fn_total} fns parsed workspace-wide");
}

fn count_fns(items: &[slim_check::ast::Item]) -> usize {
    use slim_check::ast::ItemKind;
    let mut n = 0;
    for item in items {
        match &item.kind {
            ItemKind::Fn(_) => n += 1,
            ItemKind::Mod {
                items: Some(inner), ..
            } => n += count_fns(inner),
            ItemKind::Impl { items, .. } | ItemKind::Trait { items, .. } => n += count_fns(items),
            _ => {}
        }
    }
    n
}

/// Hot entries declared in the real workspace must be discovered: the
/// lik pruning unit, the expm reconstruction, and the linalg SIMD
/// kernels are the paper's hot path and must stay under analysis.
#[test]
fn workspace_has_declared_hot_entries() {
    let root = workspace_root();
    let mut hot = Vec::new();
    for path in slim_check::collect_sources(&root).expect("collect") {
        let rel = slim_check::relative_name(&root, &path);
        if !rel.starts_with("crates/") || rel.contains("/tests/") {
            continue;
        }
        let source = fs::read_to_string(&path).expect("read");
        let lines = slim_check::lexer::prepare(&source);
        let Ok(file) = slim_check::parser::parse_file(&source) else {
            continue;
        };
        collect_hot(&file.items, &lines, &rel, &mut hot);
    }
    for expected in [
        "crates/lik/src/pruning.rs",
        "crates/expm/src/cpv.rs",
        "crates/linalg/src/simd/mod.rs",
    ] {
        assert!(
            hot.iter().any(|(p, _)| p == expected),
            "no hot entry declared in {expected}; found {hot:?}"
        );
    }
}

fn collect_hot(
    items: &[slim_check::ast::Item],
    lines: &[slim_check::lexer::PreparedLine],
    rel: &str,
    out: &mut Vec<(String, String)>,
) {
    use slim_check::ast::ItemKind;
    for item in items {
        match &item.kind {
            ItemKind::Fn(f) if slim_check::interproc::hot_marked(lines, f.line) => {
                out.push((rel.to_string(), f.name.clone()));
            }
            ItemKind::Mod {
                items: Some(inner), ..
            } => collect_hot(inner, lines, rel, out),
            ItemKind::Impl { items, .. } | ItemKind::Trait { items, .. } => {
                collect_hot(items, lines, rel, out)
            }
            _ => {}
        }
    }
}
