//! Fixture suite for the interprocedural rules: each file under
//! `fixtures/interproc/` is scanned as a one-file virtual workspace
//! through the FULL pipeline (line rules, parser, call graph,
//! interprocedural rules, stale-waiver accounting). `//~ <rule>`
//! markers name the expected diagnostics per line; `//@ path:` gives
//! the virtual workspace path — rule scoping is path-sensitive, so the
//! `ok_` fixtures prove the blessed shapes stay silent and the `bad_`
//! fixtures prove each new rule actually fires.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use slim_check::{scan_virtual, ScanOptions};

fn expected_from(source: &str) -> BTreeSet<(usize, String)> {
    let mut out = BTreeSet::new();
    for (i, line) in source.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find("//~") {
            let marker = rest[at + 3..].trim();
            let rule: String = marker
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                .collect();
            assert!(!rule.is_empty(), "empty //~ marker on line {}", i + 1);
            out.insert((i + 1, rule));
            rest = &rest[at + 3..];
        }
    }
    out
}

fn virtual_path(source: &str) -> String {
    source
        .lines()
        .find_map(|l| l.trim().strip_prefix("//@ path:"))
        .map(|p| p.trim().to_string())
        .unwrap_or_else(|| panic!("fixture missing `//@ path:` header"))
}

#[test]
fn interproc_fixtures_match_expected_diagnostics() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("interproc");
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("fixtures/interproc directory")
        .map(|e| e.expect("fixture entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 6,
        "expected bad/ok pairs for the interprocedural rules, saw {}",
        entries.len()
    );

    let opts = ScanOptions {
        stale_waivers: true,
    };
    for path in entries {
        let source = fs::read_to_string(&path).expect("read fixture");
        let vpath = virtual_path(&source);
        let expected = expected_from(&source);
        let files = vec![(vpath, source.clone())];
        let got: BTreeSet<(usize, String)> = scan_virtual(&files, opts)
            .into_iter()
            .map(|d| (d.line, d.rule.name().to_string()))
            .collect();

        let missing: Vec<_> = expected.difference(&got).collect();
        let surplus: Vec<_> = got.difference(&expected).collect();
        assert!(
            missing.is_empty() && surplus.is_empty(),
            "{}: expected-but-missing {:?}; fired-but-unexpected {:?}",
            path.display(),
            missing,
            surplus
        );
    }
}

/// Hot-path reachability crosses file (and therefore crate) boundaries:
/// a hot entry in one crate taints a panic site in another.
#[test]
fn cross_file_reachability_fixture() {
    let files = vec![
        (
            "crates/lik/src/lib.rs".to_string(),
            "// check: hot cross-crate entry\n\
             pub fn entry(xs: &[f64]) -> f64 { slim_linalg::pick(xs) }\n"
                .to_string(),
        ),
        (
            "crates/linalg/src/lib.rs".to_string(),
            "pub fn pick(xs: &[f64]) -> f64 { xs[0] }\n".to_string(),
        ),
    ];
    let diags = scan_virtual(&files, ScanOptions::default());
    assert!(
        diags.iter().any(|d| {
            d.rule.name() == "panic-free-hot-path"
                && d.path == "crates/linalg/src/lib.rs"
                && d.what.contains("slim_lik::entry")
        }),
        "{diags:?}"
    );
}
