//! Fixture-based lint regression suite: each file under `fixtures/`
//! carries `//~ <rule>` markers on the lines expected to trip a rule,
//! plus an `//@ path:` header giving the virtual workspace path the
//! snippet is scanned as. The harness checks markers against the
//! scanner's diagnostics in both directions, so a lint that stops
//! firing (or starts over-firing) breaks this test.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use slim_check::scan_source;

/// (line, rule-name) pairs expected from the `//~` markers.
fn expected_from(source: &str) -> BTreeSet<(usize, String)> {
    let mut out = BTreeSet::new();
    for (i, line) in source.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find("//~") {
            let marker = rest[at + 3..].trim();
            let rule: String = marker
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                .collect();
            assert!(!rule.is_empty(), "empty //~ marker on line {}", i + 1);
            out.insert((i + 1, rule));
            rest = &rest[at + 3..];
        }
    }
    out
}

/// The `//@ path:` header naming the virtual scan path.
fn virtual_path(source: &str) -> String {
    source
        .lines()
        .find_map(|l| l.trim().strip_prefix("//@ path:"))
        .map(|p| p.trim().to_string())
        .unwrap_or_else(|| panic!("fixture missing `//@ path:` header"))
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut checked = 0usize;
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("fixtures directory")
        .map(|e| e.expect("fixture entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "no fixtures found in {}",
        dir.display()
    );

    for path in entries {
        let source = fs::read_to_string(&path).expect("read fixture");
        let vpath = virtual_path(&source);
        let expected = expected_from(&source);
        let got: BTreeSet<(usize, String)> = scan_source(&vpath, &source)
            .into_iter()
            .map(|d| (d.line, d.rule.name().to_string()))
            .collect();

        let missing: Vec<_> = expected.difference(&got).collect();
        let surplus: Vec<_> = got.difference(&expected).collect();
        assert!(
            missing.is_empty() && surplus.is_empty(),
            "{}: expected-but-missing {:?}; fired-but-unexpected {:?}",
            path.display(),
            missing,
            surplus
        );
        checked += 1;
    }
    assert!(checked >= 3, "expected at least 3 fixtures, saw {checked}");
}

#[test]
fn fixture_markers_do_not_fool_the_scanner() {
    // The `//~` marker is itself a comment; make sure markers never leak
    // into blanked code and trip rules on their own.
    let clean =
        "//@ path: crates/lik/src/x.rs\nfn ok() -> u32 { 1 } //~ marker-with-no-rule-mentions\n";
    // No rule named in the marker -> scanning must yield nothing even
    // though the comment mentions nothing lint-worthy.
    assert!(scan_source("crates/lik/src/x.rs", clean).is_empty());
}
