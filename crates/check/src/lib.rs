//! `slim-check`: the repo-specific lint driver.
//!
//! Walks the workspace source and enforces determinism and robustness
//! rules that generic tooling cannot express (see [`rules::RuleId`]),
//! comparing the result against a committed ratchet baseline
//! ([`baseline`]) so existing debt burns down while new violations
//! fail CI.
//!
//! The crate is dependency-free on purpose: the lint driver must build
//! instantly in any environment (including offline CI) and can never be
//! broken by the code it checks.

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod interproc;
pub mod lexer;
pub mod parser;
pub mod resolve;
pub mod rules;
pub mod tokens;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::{Diagnostic, FileWaivers};

/// Scan one source string as if it lived at `path` (workspace-relative,
/// forward slashes). This is the entry point the fixture tests use.
/// Line rules only — see [`scan_virtual`] for the interprocedural set.
pub fn scan_source(path: &str, source: &str) -> Vec<Diagnostic> {
    rules::check_file(path, &lexer::prepare(source))
}

/// Scan options for the full (line + interprocedural) pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanOptions {
    /// Report `stale-waiver` findings for waivers that suppressed
    /// nothing.
    pub stale_waivers: bool,
}

/// Scan a *virtual* workspace: `(path, source)` pairs run through the
/// whole pipeline — line rules, parser, call graph, interprocedural
/// rules, and (optionally) stale-waiver accounting. This is the entry
/// point for the interprocedural fixture suite.
pub fn scan_virtual(files: &[(String, String)], opts: ScanOptions) -> Vec<Diagnostic> {
    let mut waivers: BTreeMap<String, FileWaivers> = BTreeMap::new();
    let mut diags = Vec::new();
    let mut analyzed = Vec::new();
    for (path, source) in files {
        let lines = lexer::prepare(source);
        let mut fw = FileWaivers::parse(&lines);
        diags.extend(rules::check_file_tracked(path, &lines, &mut fw));
        waivers.insert(path.clone(), fw);
        if let Ok(ast) = parser::parse_file(source) {
            analyzed.push(interproc::AnalyzedFile {
                path: path.clone(),
                lines,
                ast,
            });
        }
    }
    diags.extend(interproc::run(&analyzed, &BTreeMap::new(), &mut waivers));
    if opts.stale_waivers {
        for (path, fw) in &waivers {
            diags.extend(fw.stale(path));
        }
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    diags
}

/// Directories never scanned, wherever they appear.
const SKIP_DIRS: [&str; 4] = ["target", ".git", ".github", "fixtures"];

/// Collect every `.rs` file under `root` worth checking, as
/// workspace-relative forward-slash paths, sorted.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scan the whole workspace rooted at `root`. Tests under a crate's
/// `tests/` directory are exercised only by the test-code-aware rules
/// (everything in a `tests/` tree counts as test code).
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    scan_workspace_with(root, ScanOptions::default())
}

/// [`scan_workspace`] with options: line rules per file, then the
/// interprocedural rules over the parsed workspace, then (optionally)
/// stale-waiver accounting across both.
pub fn scan_workspace_with(root: &Path, opts: ScanOptions) -> io::Result<Vec<Diagnostic>> {
    let crate_names = crate_idents(root);
    let mut waivers: BTreeMap<String, FileWaivers> = BTreeMap::new();
    let mut diags = Vec::new();
    let mut analyzed = Vec::new();
    for path in collect_sources(root)? {
        let rel = relative_name(root, &path);
        // Integration tests, benches, and examples are test-grade code:
        // the robustness rules do not apply there, and the determinism
        // rules are path-scoped to src/ trees anyway.
        if rel.contains("/tests/") || rel.starts_with("tests/") || rel.contains("/benches/") {
            continue;
        }
        let source = fs::read_to_string(&path)?;
        let lines = lexer::prepare(&source);
        let mut fw = FileWaivers::parse(&lines);
        diags.extend(rules::check_file_tracked(&rel, &lines, &mut fw));
        waivers.insert(rel.clone(), fw);
        // Files the parser cannot accept are covered by the workspace
        // smoke test; here they just drop out of the interprocedural
        // pass rather than aborting the whole scan.
        if let Ok(ast) = parser::parse_file(&source) {
            analyzed.push(interproc::AnalyzedFile {
                path: rel,
                lines,
                ast,
            });
        }
    }
    diags.extend(interproc::run(&analyzed, &crate_names, &mut waivers));
    if opts.stale_waivers {
        for (path, fw) in &waivers {
            diags.extend(fw.stale(path));
        }
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(diags)
}

/// Map `crates/<dir>` → crate ident (underscored package name) by
/// reading each crate's `Cargo.toml`. Missing manifests fall back to
/// the `slim_<dir>` convention inside the resolver.
fn crate_idents(root: &Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let dir = entry.file_name().to_string_lossy().into_owned();
        let manifest = entry.path().join("Cargo.toml");
        let Ok(text) = fs::read_to_string(&manifest) else {
            continue;
        };
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    let name = rest.trim().trim_matches('"');
                    out.insert(dir.clone(), name.replace('-', "_"));
                    break;
                }
            }
        }
    }
    out
}

/// Workspace-relative path with forward slashes (stable across OSes so
/// the committed baseline is portable).
pub fn relative_name(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_source_is_the_fixture_entry_point() {
        let d = scan_source("crates/lik/src/x.rs", "fn f() { y.unwrap(); }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::RuleId::RobUnwrap);
    }

    #[test]
    fn relative_names_use_forward_slashes() {
        let root = Path::new("/w");
        let p = Path::new("/w/crates/lik/src/par.rs");
        assert_eq!(relative_name(root, p), "crates/lik/src/par.rs");
    }
}
