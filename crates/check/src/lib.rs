//! `slim-check`: the repo-specific lint driver.
//!
//! Walks the workspace source and enforces determinism and robustness
//! rules that generic tooling cannot express (see [`rules::RuleId`]),
//! comparing the result against a committed ratchet baseline
//! ([`baseline`]) so existing debt burns down while new violations
//! fail CI.
//!
//! The crate is dependency-free on purpose: the lint driver must build
//! instantly in any environment (including offline CI) and can never be
//! broken by the code it checks.

pub mod baseline;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::Diagnostic;

/// Scan one source string as if it lived at `path` (workspace-relative,
/// forward slashes). This is the entry point the fixture tests use.
pub fn scan_source(path: &str, source: &str) -> Vec<Diagnostic> {
    rules::check_file(path, &lexer::prepare(source))
}

/// Directories never scanned, wherever they appear.
const SKIP_DIRS: [&str; 4] = ["target", ".git", ".github", "fixtures"];

/// Collect every `.rs` file under `root` worth checking, as
/// workspace-relative forward-slash paths, sorted.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scan the whole workspace rooted at `root`. Tests under a crate's
/// `tests/` directory are exercised only by the test-code-aware rules
/// (everything in a `tests/` tree counts as test code).
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for path in collect_sources(root)? {
        let rel = relative_name(root, &path);
        // Integration tests, benches, and examples are test-grade code:
        // the robustness rules do not apply there, and the determinism
        // rules are path-scoped to src/ trees anyway.
        if rel.contains("/tests/") || rel.starts_with("tests/") || rel.contains("/benches/") {
            continue;
        }
        let source = fs::read_to_string(&path)?;
        diags.extend(scan_source(&rel, &source));
    }
    Ok(diags)
}

/// Workspace-relative path with forward slashes (stable across OSes so
/// the committed baseline is portable).
pub fn relative_name(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_source_is_the_fixture_entry_point() {
        let d = scan_source("crates/lik/src/x.rs", "fn f() { y.unwrap(); }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::RuleId::RobUnwrap);
    }

    #[test]
    fn relative_names_use_forward_slashes() {
        let root = Path::new("/w");
        let p = Path::new("/w/crates/lik/src/par.rs");
        assert_eq!(relative_name(root, p), "crates/lik/src/par.rs");
    }
}
