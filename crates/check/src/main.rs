//! `slim-check` CLI: scan the workspace, compare against the ratchet
//! baseline, exit nonzero on regressions.
//!
//! ```text
//! slim-check [--root <dir>] [--baseline <file>] [--update-baseline]
//!            [--list] [--json] [--stale-waivers] [--explain <rule>]
//! ```
//!
//! Exit codes: 0 = clean (or baseline updated), 1 = regressions vs the
//! baseline, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use slim_check::baseline::{self, Delta};
use slim_check::rules::{Diagnostic, RuleId};
use slim_check::{rules, scan_workspace_with, ScanOptions};

struct Args {
    root: PathBuf,
    baseline: PathBuf,
    update: bool,
    list: bool,
    json: bool,
    stale_waivers: bool,
    explain: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut update = false;
    let mut list = false;
    let mut json = false;
    let mut stale_waivers = false;
    let mut explain = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                baseline_path = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--update-baseline" => update = true,
            "--list" => list = true,
            "--json" => json = true,
            "--stale-waivers" => stale_waivers = true,
            "--explain" => {
                explain = Some(it.next().ok_or("--explain needs a rule name")?);
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    // Running under `cargo run -p slim-check` puts the cwd at the
    // workspace root already; under `cargo test` the manifest dir is the
    // crate — prefer an explicit workspace root when the default cwd has
    // no crates/ directory.
    if !root.join("crates").is_dir() {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let candidate = PathBuf::from(manifest).join("../..");
            if candidate.join("crates").is_dir() {
                root = candidate;
            }
        }
    }
    let baseline = baseline_path.unwrap_or_else(|| root.join("check_baseline.json"));
    Ok(Args {
        root,
        baseline,
        update,
        list,
        json,
        stale_waivers,
        explain,
    })
}

fn usage() -> &'static str {
    "slim-check: repo-specific determinism/robustness lints with a ratchet baseline\n\
     \n\
     usage: slim-check [--root <dir>] [--baseline <file>] [--update-baseline]\n\
     \x20                 [--list] [--json] [--stale-waivers] [--explain <rule>]\n\
     \n\
     --root <dir>        workspace root to scan (default: .)\n\
     --baseline <file>   ratchet baseline (default: <root>/check_baseline.json)\n\
     --update-baseline   rewrite the baseline to match the current scan\n\
     --list              print every current violation, not just deltas\n\
     --json              machine-readable findings/deltas on stdout\n\
     --stale-waivers     fail waivers that suppress no finding (CI runs this)\n\
     --explain <rule>    print a rule's rationale and waiver syntax\n\
     \n\
     line rules:\n\
     \x20 det-hash-iter        no HashMap/HashSet in report/journal/aggregation paths\n\
     \x20 det-float-accum      no raw f64 accumulation in lik/linalg outside blessed kernels\n\
     \x20 det-float-cmp        no ==/!= against float literals in non-test code\n\
     \x20 det-wallclock        no Instant::now/SystemTime outside obs/trace/bench crates\n\
     \x20 rob-unwrap           no unwrap/expect/panic in library non-test code\n\
     \x20 rob-safety           every `unsafe` needs a // SAFETY: comment\n\
     interprocedural rules (AST + workspace call graph):\n\
     \x20 panic-free-hot-path  no panic site reachable from a `check: hot` entry\n\
     \x20 atomic-ordering      Ordering::* site policy (Relaxed/SeqCst/pairing)\n\
     \x20 alloc-in-hot-loop    no allocation in loops of hot-path functions\n\
     \x20 stale-waiver         waivers must suppress something (--stale-waivers)\n\
     \n\
     waive a violation with `// check: allow(<rule>) <reason>` on the line\n\
     or the comment line above it; the reason is mandatory. Declare a hot\n\
     entry point with a `// check: hot <why>` comment above the fn."
}

/// Minimal JSON string escaping (the same dependency-free discipline as
/// the baseline module).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render the scan as one JSON document: findings, per-rule counts, and
/// baseline deltas.
fn render_json(diags: &[Diagnostic], deltas: &[Delta]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let sep = if i + 1 == diags.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}{}\n",
            json_str(d.rule.name()),
            json_str(&d.path),
            d.line,
            json_str(&d.what),
            sep
        ));
    }
    out.push_str("  ],\n  \"deltas\": [\n");
    for (i, delta) in deltas.iter().enumerate() {
        let sep = if i + 1 == deltas.len() { "" } else { "," };
        let (kind, rule, path, base, cur) = match delta {
            Delta::Regression {
                rule,
                path,
                baseline,
                current,
            } => ("regression", rule, path, baseline, current),
            Delta::Improvement {
                rule,
                path,
                baseline,
                current,
            } => ("improvement", rule, path, baseline, current),
        };
        out.push_str(&format!(
            "    {{\"kind\": {}, \"rule\": {}, \"path\": {}, \"baseline\": {}, \"current\": {}}}{}\n",
            json_str(kind),
            json_str(rule),
            json_str(path),
            base,
            cur,
            sep
        ));
    }
    out.push_str(&format!("  ],\n  \"total\": {}\n}}\n", diags.len()));
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("slim-check: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    if let Some(name) = &args.explain {
        return match RuleId::parse(name) {
            Some(rule) => {
                println!("{}", rule.explain());
                ExitCode::SUCCESS
            }
            None => {
                let known: Vec<&str> = rules::ALL_RULES.iter().map(|r| r.name()).collect();
                eprintln!(
                    "slim-check: unknown rule `{name}`; known rules: {}",
                    known.join(", ")
                );
                ExitCode::from(2)
            }
        };
    }

    let opts = ScanOptions {
        stale_waivers: args.stale_waivers,
    };
    let diags = match scan_workspace_with(&args.root, opts) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("slim-check: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let current = baseline::tally(&diags);

    if args.list && !args.json {
        for d in &diags {
            println!("{}", d.render());
        }
        println!(
            "{} violation(s) across {} rule(s)",
            diags.len(),
            current.len()
        );
    }

    if args.update {
        let text = baseline::render(&current);
        if let Err(e) = std::fs::write(&args.baseline, text) {
            eprintln!("slim-check: cannot write {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
        println!(
            "slim-check: baseline updated ({} violation(s)) -> {}",
            diags.len(),
            args.baseline.display()
        );
        return ExitCode::SUCCESS;
    }

    let base = match std::fs::read_to_string(&args.baseline) {
        Ok(text) => match baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "slim-check: malformed baseline {}: {e}",
                    args.baseline.display()
                );
                return ExitCode::from(2);
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Default::default(),
        Err(e) => {
            eprintln!("slim-check: cannot read {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
    };

    let deltas = baseline::compare(&base, &current);
    if args.json {
        print!("{}", render_json(&diags, &deltas));
    }
    let mut regressions = 0usize;
    let mut improvements = 0usize;
    for delta in &deltas {
        match delta {
            Delta::Regression {
                rule,
                path,
                baseline,
                current,
            } => {
                regressions += 1;
                eprintln!(
                    "REGRESSION {rule}: {path}: {current} violation(s), baseline allows {baseline}"
                );
                // Show the offending lines for the regressed (rule, file)
                // so CI output is actionable without a local rerun.
                for d in diags
                    .iter()
                    .filter(|d| d.rule.name() == rule && &d.path == path)
                {
                    eprintln!("  {}", d.render());
                }
            }
            Delta::Improvement {
                rule,
                path,
                baseline,
                current,
            } => {
                improvements += 1;
                if !args.json {
                    println!(
                        "improved {rule}: {path}: {current} violation(s), baseline allowed {baseline} \
                         (run with --update-baseline to lock in)"
                    );
                }
            }
        }
    }

    let total: usize = current.values().map(|f| f.values().sum::<usize>()).sum();
    if !args.json {
        println!(
            "slim-check: {} file-rule regression(s), {} improvement(s); {} total violation(s) on record ({} rules active)",
            regressions,
            improvements,
            total,
            rules::ALL_RULES.len()
        );
    }
    if regressions > 0 {
        eprintln!(
            "slim-check: fix the regressions, waive with `// check: allow(<rule>) <reason>`, \
             or (for deliberate debt) rerun with --update-baseline"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
