//! `slim-check` CLI: scan the workspace, compare against the ratchet
//! baseline, exit nonzero on regressions.
//!
//! ```text
//! slim-check [--root <dir>] [--baseline <file>] [--update-baseline] [--list]
//! ```
//!
//! Exit codes: 0 = clean (or baseline updated), 1 = regressions vs the
//! baseline, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use slim_check::baseline::{self, Delta};
use slim_check::{rules, scan_workspace};

struct Args {
    root: PathBuf,
    baseline: PathBuf,
    update: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut update = false;
    let mut list = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                baseline_path = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--update-baseline" => update = true,
            "--list" => list = true,
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    // Running under `cargo run -p slim-check` puts the cwd at the
    // workspace root already; under `cargo test` the manifest dir is the
    // crate — prefer an explicit workspace root when the default cwd has
    // no crates/ directory.
    if !root.join("crates").is_dir() {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let candidate = PathBuf::from(manifest).join("../..");
            if candidate.join("crates").is_dir() {
                root = candidate;
            }
        }
    }
    let baseline = baseline_path.unwrap_or_else(|| root.join("check_baseline.json"));
    Ok(Args {
        root,
        baseline,
        update,
        list,
    })
}

fn usage() -> &'static str {
    "slim-check: repo-specific determinism/robustness lints with a ratchet baseline\n\
     \n\
     usage: slim-check [--root <dir>] [--baseline <file>] [--update-baseline] [--list]\n\
     \n\
     --root <dir>        workspace root to scan (default: .)\n\
     --baseline <file>   ratchet baseline (default: <root>/check_baseline.json)\n\
     --update-baseline   rewrite the baseline to match the current scan\n\
     --list              print every current violation, not just deltas\n\
     \n\
     rules:\n\
     \x20 det-hash-iter    no HashMap/HashSet in report/journal/aggregation paths\n\
     \x20 det-float-accum  no raw f64 accumulation in lik/linalg outside blessed kernels\n\
     \x20 det-float-cmp    no ==/!= against float literals in non-test code\n\
     \x20 det-wallclock    no Instant::now/SystemTime outside obs/trace/bench crates\n\
     \x20 rob-unwrap       no unwrap/expect/panic in library non-test code\n\
     \x20 rob-safety       every `unsafe` needs a // SAFETY: comment\n\
     \n\
     waive a violation with `// check: allow(<rule>) <reason>` on the line\n\
     or the comment line above it; the reason is mandatory."
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("slim-check: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let diags = match scan_workspace(&args.root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("slim-check: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let current = baseline::tally(&diags);

    if args.list {
        for d in &diags {
            println!("{}", d.render());
        }
        println!(
            "{} violation(s) across {} rule(s)",
            diags.len(),
            current.len()
        );
    }

    if args.update {
        let text = baseline::render(&current);
        if let Err(e) = std::fs::write(&args.baseline, text) {
            eprintln!("slim-check: cannot write {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
        println!(
            "slim-check: baseline updated ({} violation(s)) -> {}",
            diags.len(),
            args.baseline.display()
        );
        return ExitCode::SUCCESS;
    }

    let base = match std::fs::read_to_string(&args.baseline) {
        Ok(text) => match baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "slim-check: malformed baseline {}: {e}",
                    args.baseline.display()
                );
                return ExitCode::from(2);
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Default::default(),
        Err(e) => {
            eprintln!("slim-check: cannot read {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
    };

    let deltas = baseline::compare(&base, &current);
    let mut regressions = 0usize;
    let mut improvements = 0usize;
    for delta in &deltas {
        match delta {
            Delta::Regression {
                rule,
                path,
                baseline,
                current,
            } => {
                regressions += 1;
                eprintln!(
                    "REGRESSION {rule}: {path}: {current} violation(s), baseline allows {baseline}"
                );
                // Show the offending lines for the regressed (rule, file)
                // so CI output is actionable without a local rerun.
                for d in diags
                    .iter()
                    .filter(|d| d.rule.name() == rule && &d.path == path)
                {
                    eprintln!("  {}", d.render());
                }
            }
            Delta::Improvement {
                rule,
                path,
                baseline,
                current,
            } => {
                improvements += 1;
                println!(
                    "improved {rule}: {path}: {current} violation(s), baseline allowed {baseline} \
                     (run with --update-baseline to lock in)"
                );
            }
        }
    }

    let total: usize = current.values().map(|f| f.values().sum::<usize>()).sum();
    println!(
        "slim-check: {} file-rule regression(s), {} improvement(s); {} total violation(s) on record ({} rules active)",
        regressions,
        improvements,
        total,
        rules::ALL_RULES.len()
    );
    if regressions > 0 {
        eprintln!(
            "slim-check: fix the regressions, waive with `// check: allow(<rule>) <reason>`, \
             or (for deliberate debt) rerun with --update-baseline"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
