//! Tokenizer: the parser's token source, built on the comment-blanking
//! lexer.
//!
//! Input is the output of [`crate::lexer::blank_with`] with literals
//! *kept* — comments are already spaces, so the tokenizer only has to
//! re-lex literals (it reuses the lexer's raw-string/char-literal
//! helpers so the two passes can never disagree on where a literal
//! ends). Every token carries its 1-based source line; the blanking
//! pass is line-stable by contract, so these line numbers index the
//! original file.

use crate::lexer;

/// Token kind plus payload text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (keywords are not distinguished here).
    Ident(String),
    /// Any literal: number, string (quotes + contents), char, byte.
    Lit(String),
    /// `'a`, `'static` — lifetimes, with the leading quote stripped.
    Lifetime(String),
    /// Operator / punctuation, joined for the multi-char operators the
    /// parser cares about (`::`, `->`, `=>`, `..`, `..=`, `&&`, …).
    /// `<` and `>` are never joined so generic-argument depth can be
    /// tracked one character at a time.
    Punct(String),
    /// Opening delimiter: `(`, `[` or `{`.
    Open(char),
    /// Closing delimiter: `)`, `]` or `}`.
    Close(char),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

impl Token {
    /// Is this token the identifier `word`?
    pub fn is_ident(&self, word: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == word)
    }

    /// Is this token the punctuation `p`?
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.tok, Tok::Punct(s) if s == p)
    }

    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// Two- and three-character operators the tokenizer joins. Order
/// matters: longer operators are tried first. `<<`/`>>` are deliberately
/// absent (they would break generic-bracket matching in `Vec<Vec<T>>`).
const JOINED: [&str; 21] = [
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "..", "&&", "||", "==", "!=", "<=", ">=", "+=",
    "-=", "*=", "/=", "%=", "^=", "|=",
];

/// Tokenize a comment-blanked (literals kept) source string.
pub fn tokenize(blanked: &str) -> Vec<Token> {
    let chars: Vec<char> = blanked.chars().collect();
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Raw strings / raw byte strings (contents survive blanking).
        if (c == 'r' || c == 'b') && lexer::is_raw_string_start(&chars, i) {
            let (hashes, consumed) = lexer::raw_string_open(&chars, i);
            let start = i;
            i += consumed;
            while i < chars.len() {
                if chars[i] == '"' && lexer::closes_raw(&chars, i, hashes) {
                    i += 1 + hashes as usize;
                    break;
                }
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            out.push(Token {
                tok: Tok::Lit(chars[start..i.min(chars.len())].iter().collect()),
                line,
            });
            continue;
        }
        // Byte strings/chars: emit the `b` as part of the literal.
        if c == 'b' && matches!(chars.get(i + 1), Some('"') | Some('\'')) {
            let start = i;
            i += 1;
            let (len, lines) = literal_len(&chars, i);
            i += len;
            out.push(Token {
                tok: Tok::Lit(chars[start..i].iter().collect()),
                line,
            });
            line += lines;
            continue;
        }
        if c == '"' {
            let start = i;
            let (len, lines) = literal_len(&chars, i);
            i += len;
            out.push(Token {
                tok: Tok::Lit(chars[start..i].iter().collect()),
                line,
            });
            line += lines;
            continue;
        }
        if c == '\'' {
            if lexer::is_char_literal(&chars, i) {
                let start = i;
                let (len, lines) = literal_len(&chars, i);
                i += len;
                out.push(Token {
                    tok: Tok::Lit(chars[start..i].iter().collect()),
                    line,
                });
                line += lines;
            } else {
                // Lifetime: `'` + identifier.
                let mut j = i + 1;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                out.push(Token {
                    tok: Tok::Lifetime(chars[i + 1..j].iter().collect()),
                    line,
                });
                i = j;
            }
            continue;
        }
        if is_ident_start(c) {
            // Raw identifiers (`r#match`) reach here only when not a raw
            // string start; fold the `r#` prefix into the name.
            let start = i;
            let mut j = i;
            if c == 'r'
                && chars.get(i + 1) == Some(&'#')
                && chars.get(i + 2).is_some_and(|c| is_ident_start(*c))
            {
                j += 2;
            }
            j += 1;
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            out.push(Token {
                tok: Tok::Ident(chars[start..j].iter().collect()),
                line,
            });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < chars.len() {
                let d = chars[j];
                if d.is_ascii_alphanumeric() || d == '_' {
                    j += 1;
                } else if d == '.'
                    && chars.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                    && chars.get(j.wrapping_sub(1)) != Some(&'.')
                {
                    // `1.5` consumes the dot; `1..n` and `1.max(2)` do not.
                    j += 1;
                } else if (d == '+' || d == '-')
                    && matches!(chars.get(j.wrapping_sub(1)), Some('e') | Some('E'))
                    && chars.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                {
                    // Exponent sign: `1e-9`.
                    j += 1;
                } else {
                    break;
                }
            }
            out.push(Token {
                tok: Tok::Lit(chars[i..j].iter().collect()),
                line,
            });
            i = j;
            continue;
        }
        if matches!(c, '(' | '[' | '{') {
            out.push(Token {
                tok: Tok::Open(c),
                line,
            });
            i += 1;
            continue;
        }
        if matches!(c, ')' | ']' | '}') {
            out.push(Token {
                tok: Tok::Close(c),
                line,
            });
            i += 1;
            continue;
        }
        // Punctuation: try the joined operators longest-first.
        let mut matched = false;
        for op in JOINED {
            let oplen = op.len();
            if chars.len() - i >= oplen && chars[i..i + oplen].iter().collect::<String>() == *op {
                out.push(Token {
                    tok: Tok::Punct(op.to_string()),
                    line,
                });
                i += oplen;
                matched = true;
                break;
            }
        }
        if !matched {
            out.push(Token {
                tok: Tok::Punct(c.to_string()),
                line,
            });
            i += 1;
        }
    }
    out
}

/// Length in chars of the string/char literal starting at `i` (which is
/// the opening quote), plus how many newlines it spans.
fn literal_len(chars: &[char], i: usize) -> (usize, usize) {
    let quote = chars[i];
    let mut j = i + 1;
    let mut lines = 0usize;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                // An escaped char still counts toward the span when it
                // is a newline — `"...\` + line break (the rustfmt
                // string-continuation idiom) must not desync every
                // later token's line number.
                if chars.get(j + 1) == Some(&'\n') {
                    lines += 1;
                }
                j += 2;
            }
            '\n' => {
                lines += 1;
                j += 1;
            }
            c if c == quote => return (j + 1 - i, lines),
            _ => j += 1,
        }
    }
    (chars.len() - i, lines)
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Convenience: blank comments (keeping literals) and tokenize.
pub fn tokenize_source(source: &str) -> Vec<Token> {
    tokenize(&lexer::blank_with(source, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize_source(src).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_stream() {
        let t = toks("fn f(x: u32) -> u32 { x + 1 }");
        assert_eq!(t[0], Tok::Ident("fn".into()));
        assert_eq!(t[1], Tok::Ident("f".into()));
        assert_eq!(t[2], Tok::Open('('));
        assert!(t.contains(&Tok::Punct("->".into())));
        assert!(t.contains(&Tok::Lit("1".into())));
    }

    #[test]
    fn paths_and_turbofish() {
        let t = toks("a::b::<T>().collect::<Vec<_>>()");
        assert!(t.contains(&Tok::Punct("::".into())));
        // `<` and `>` stay single so generic depth can be tracked.
        assert!(t.contains(&Tok::Punct("<".into())));
        assert!(t.contains(&Tok::Punct(">".into())));
    }

    #[test]
    fn literals_keep_contents() {
        let t = toks("cfg(feature = \"sanitize\")");
        assert!(t.contains(&Tok::Lit("\"sanitize\"".into())));
    }

    #[test]
    fn line_numbers_track_multiline_literals() {
        let tokens = tokenize_source("let a = \"x\ny\";\nlet b = 1;\n");
        let b = tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn line_numbers_survive_backslash_newline_continuation() {
        // rustfmt wraps long strings as `"...\` + newline + `   ...";`
        // the escaped newline still advances the line counter.
        let tokens = tokenize_source("let a = \"x \\\n     y\";\nlet b = 1;\n");
        let b = tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn comments_disappear_lifetimes_stay() {
        let t = toks("fn f<'a>(x: &'a str) /* gone */ -> &'a str { x } // bye");
        assert!(t.contains(&Tok::Lifetime("a".into())));
        assert!(!t
            .iter()
            .any(|k| matches!(k, Tok::Ident(s) if s == "gone" || s == "bye")));
    }

    #[test]
    fn float_vs_range() {
        let t = toks("0..n; 1.5e-3; x.max(1)");
        assert!(t.contains(&Tok::Punct("..".into())));
        assert!(t.contains(&Tok::Lit("1.5e-3".into())));
        assert!(t.contains(&Tok::Lit("1".into())));
    }
}
