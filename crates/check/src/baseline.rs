//! The ratchet baseline: committed per-(rule, file) violation counts.
//!
//! The driver compares the current scan against `check_baseline.json`.
//! A file whose count for a rule *exceeds* its baseline fails the run;
//! a file that *improved* is reported so the baseline can be tightened
//! with `--update-baseline`. Debt can only go down.
//!
//! The format is deliberately tiny so it can be parsed without a JSON
//! dependency:
//!
//! ```json
//! {
//!   "slim_check_baseline": 1,
//!   "counts": {
//!     "det-float-accum": { "crates/linalg/src/ql.rs": 12 }
//!   }
//! }
//! ```

use std::collections::BTreeMap;

use crate::rules::Diagnostic;

/// `rule name -> path -> allowed violation count`.
pub type Counts = BTreeMap<String, BTreeMap<String, usize>>;

/// Collapse diagnostics to per-(rule, file) counts.
pub fn tally(diags: &[Diagnostic]) -> Counts {
    let mut counts: Counts = BTreeMap::new();
    for d in diags {
        *counts
            .entry(d.rule.name().to_string())
            .or_default()
            .entry(d.path.clone())
            .or_default() += 1;
    }
    counts
}

/// Serialize counts in the committed baseline format (sorted, stable).
pub fn render(counts: &Counts) -> String {
    let mut out = String::from("{\n  \"slim_check_baseline\": 1,\n  \"counts\": {");
    let mut first_rule = true;
    for (rule, files) in counts {
        if files.is_empty() {
            continue;
        }
        if !first_rule {
            out.push(',');
        }
        first_rule = false;
        out.push_str(&format!("\n    \"{rule}\": {{"));
        let mut first_file = true;
        for (path, n) in files {
            if !first_file {
                out.push(',');
            }
            first_file = false;
            out.push_str(&format!("\n      \"{path}\": {n}"));
        }
        out.push_str("\n    }");
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Parse the baseline format. Returns an error string on malformed
/// input; an empty or missing file is an empty baseline.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts: Counts = BTreeMap::new();
    if text.trim().is_empty() {
        return Ok(counts);
    }
    if !text.contains("\"slim_check_baseline\"") {
        return Err("missing \"slim_check_baseline\" version key".to_string());
    }
    // Walk `"key": value` pairs; a pair whose value opens `{` starts a
    // rule section, a numeric pair inside a section is a file count.
    let mut current_rule: Option<String> = None;
    let mut rest = text;
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let Some(close) = after.find('"') else {
            return Err("unterminated string in baseline".to_string());
        };
        let key = &after[..close];
        let tail = after[close + 1..].trim_start();
        let Some(tail) = tail.strip_prefix(':') else {
            rest = &after[close + 1..];
            continue;
        };
        let tail = tail.trim_start();
        if tail.starts_with('{') {
            if key != "counts" {
                current_rule = Some(key.to_string());
                counts.entry(key.to_string()).or_default();
            }
        } else if tail.starts_with(|c: char| c.is_ascii_digit()) {
            let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
            let n: usize = digits.parse().map_err(|_| format!("bad count for {key}"))?;
            if key == "slim_check_baseline" {
                if n != 1 {
                    return Err(format!("unsupported baseline version {n}"));
                }
            } else if let Some(rule) = &current_rule {
                counts
                    .entry(rule.clone())
                    .or_default()
                    .insert(key.to_string(), n);
            } else {
                return Err(format!("file count `{key}` outside a rule section"));
            }
        }
        rest = &after[close + 1..];
    }
    counts.retain(|_, files| !files.is_empty());
    Ok(counts)
}

/// One line of the ratchet comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delta {
    /// More violations than the baseline allows — fails the run.
    Regression {
        rule: String,
        path: String,
        baseline: usize,
        current: usize,
    },
    /// Fewer violations than the baseline records — tighten it.
    Improvement {
        rule: String,
        path: String,
        baseline: usize,
        current: usize,
    },
}

/// Compare a scan against the baseline.
pub fn compare(baseline: &Counts, current: &Counts) -> Vec<Delta> {
    let mut out = Vec::new();
    let empty = BTreeMap::new();
    let mut rules: Vec<&String> = baseline.keys().chain(current.keys()).collect();
    rules.sort();
    rules.dedup();
    for rule in rules {
        let base_files = baseline.get(rule).unwrap_or(&empty);
        let cur_files = current.get(rule).unwrap_or(&empty);
        let mut paths: Vec<&String> = base_files.keys().chain(cur_files.keys()).collect();
        paths.sort();
        paths.dedup();
        for path in paths {
            let b = base_files.get(path).copied().unwrap_or(0);
            let c = cur_files.get(path).copied().unwrap_or(0);
            if c > b {
                out.push(Delta::Regression {
                    rule: rule.clone(),
                    path: path.clone(),
                    baseline: b,
                    current: c,
                });
            } else if c < b {
                out.push(Delta::Improvement {
                    rule: rule.clone(),
                    path: path.clone(),
                    baseline: b,
                    current: c,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, &str, usize)]) -> Counts {
        let mut c = Counts::new();
        for (rule, path, n) in entries {
            c.entry(rule.to_string())
                .or_default()
                .insert(path.to_string(), *n);
        }
        c
    }

    #[test]
    fn render_parse_round_trip() {
        let c = counts(&[
            ("det-float-accum", "crates/linalg/src/ql.rs", 12),
            ("det-float-accum", "crates/lik/src/par.rs", 1),
            ("rob-unwrap", "crates/lik/src/pruning.rs", 3),
        ]);
        let text = render(&c);
        assert_eq!(parse(&text).unwrap(), c);
    }

    #[test]
    fn empty_baseline_parses() {
        assert!(parse("").unwrap().is_empty());
        let rendered = render(&Counts::new());
        assert!(parse(&rendered).unwrap().is_empty());
    }

    #[test]
    fn version_mismatch_rejected() {
        let text = "{\n  \"slim_check_baseline\": 2,\n  \"counts\": {}\n}\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn compare_finds_regressions_and_improvements() {
        let base = counts(&[("rob-unwrap", "a.rs", 2), ("rob-unwrap", "b.rs", 1)]);
        let cur = counts(&[("rob-unwrap", "a.rs", 3)]);
        let deltas = compare(&base, &cur);
        assert_eq!(
            deltas,
            vec![
                Delta::Regression {
                    rule: "rob-unwrap".into(),
                    path: "a.rs".into(),
                    baseline: 2,
                    current: 3,
                },
                Delta::Improvement {
                    rule: "rob-unwrap".into(),
                    path: "b.rs".into(),
                    baseline: 1,
                    current: 0,
                },
            ]
        );
    }

    #[test]
    fn new_file_is_a_regression() {
        let deltas = compare(&Counts::new(), &counts(&[("det-float-cmp", "new.rs", 1)]));
        assert!(matches!(deltas[0], Delta::Regression { .. }));
    }
}
