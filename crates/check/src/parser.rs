//! Dependency-free recursive-descent parser for the subset of Rust the
//! interprocedural rules need.
//!
//! Pipeline: [`crate::lexer::blank_with`] (comments out, literals kept)
//! → [`crate::tokens::tokenize`] → balanced token *trees* (delimiter
//! groups, like `proc_macro::TokenTree`) → items with attribute/cfg
//! tracking and function bodies as [`crate::ast::Expr`] trees.
//!
//! The parser is deliberately permissive: constructs it does not model
//! (patterns, types, const generics) are skipped structurally by
//! delimiter matching, and anything unrecognized advances one token.
//! The only hard errors are unbalanced delimiters — the workspace smoke
//! test pins that every `.rs` file in the repo parses cleanly.

use crate::ast::{Cfg, Expr, File, FnItem, Item, ItemKind, UseImport};
use crate::tokens::{self, Tok, Token};

/// A parse failure. Only delimiter imbalance produces these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// A token or a balanced delimiter group.
#[derive(Debug, Clone)]
enum Tree {
    Tok(Token),
    Group(Group),
}

#[derive(Debug, Clone)]
struct Group {
    delim: char,
    open_line: usize,
    trees: Vec<Tree>,
}

/// Parse one source file.
pub fn parse_file(source: &str) -> Result<File, ParseError> {
    let toks = tokens::tokenize_source(source);
    let trees = build_trees(toks)?;
    Ok(File {
        items: parse_items(&trees),
    })
}

/// Group a flat token stream into balanced delimiter trees.
fn build_trees(toks: Vec<Token>) -> Result<Vec<Tree>, ParseError> {
    let mut stack: Vec<(char, usize, Vec<Tree>)> = Vec::new();
    let mut cur: Vec<Tree> = Vec::new();
    for t in toks {
        match t.tok {
            Tok::Open(d) => {
                stack.push((d, t.line, std::mem::take(&mut cur)));
            }
            Tok::Close(d) => {
                let want = match d {
                    ')' => '(',
                    ']' => '[',
                    _ => '{',
                };
                match stack.pop() {
                    Some((open, open_line, parent)) if open == want => {
                        let group = Group {
                            delim: open,
                            open_line,
                            trees: std::mem::replace(&mut cur, parent),
                        };
                        cur.push(Tree::Group(group));
                    }
                    Some((open, open_line, _)) => {
                        return Err(ParseError {
                            line: t.line,
                            msg: format!("`{d}` closes `{open}` opened on line {open_line}"),
                        });
                    }
                    None => {
                        return Err(ParseError {
                            line: t.line,
                            msg: format!("unbalanced closing `{d}`"),
                        });
                    }
                }
            }
            _ => cur.push(Tree::Tok(t)),
        }
    }
    if let Some((open, open_line, _)) = stack.pop() {
        return Err(ParseError {
            line: open_line,
            msg: format!("unclosed `{open}`"),
        });
    }
    Ok(cur)
}

// ---------------------------------------------------------------- helpers

fn tok_at(trees: &[Tree], i: usize) -> Option<&Token> {
    match trees.get(i) {
        Some(Tree::Tok(t)) => Some(t),
        _ => None,
    }
}

fn ident_at(trees: &[Tree], i: usize) -> Option<&str> {
    tok_at(trees, i).and_then(|t| t.ident())
}

fn punct_at(trees: &[Tree], i: usize, p: &str) -> bool {
    tok_at(trees, i).is_some_and(|t| t.is_punct(p))
}

fn group_at(trees: &[Tree], i: usize, delim: char) -> Option<&Group> {
    match trees.get(i) {
        Some(Tree::Group(g)) if g.delim == delim => Some(g),
        _ => None,
    }
}

/// Skip a `<…>` generic-argument run starting at the `<` in `trees[i]`.
/// Returns the index just past the matching `>`. Delimiter groups are
/// stepped over whole; `->`/`=>` are joined puncts so they never count.
fn skip_generics(trees: &[Tree], i: usize) -> usize {
    debug_assert!(punct_at(trees, i, "<"));
    let mut depth = 0i32;
    let mut j = i;
    while j < trees.len() {
        if punct_at(trees, j, "<") {
            depth += 1;
        } else if punct_at(trees, j, ">") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Read a `::`-separated path starting at the identifier in `trees[i]`.
/// Turbofish runs (`::<T>`) are skipped. Returns the segments and the
/// index just past the path.
fn read_path(trees: &[Tree], i: usize) -> (Vec<String>, usize) {
    let mut segs = vec![ident_at(trees, i).unwrap_or_default().to_string()];
    let mut j = i + 1;
    loop {
        if punct_at(trees, j, "::") {
            if let Some(seg) = ident_at(trees, j + 1) {
                segs.push(seg.to_string());
                j += 2;
            } else if punct_at(trees, j + 1, "<") {
                j = skip_generics(trees, j + 1);
            } else {
                break;
            }
        } else {
            break;
        }
    }
    (segs, j)
}

// ------------------------------------------------------------- attributes

#[derive(Debug, Clone, Copy, Default)]
struct Attrs {
    cfg: Option<Cfg>,
    test_attr: bool,
}

/// Classify a `cfg(…)` predicate token run (the inside of the parens).
fn classify_cfg(trees: &[Tree]) -> Cfg {
    // `test` or `all(…test…)` → Test; `feature = "sanitize"` (possibly
    // under `all`) → Sanitize; everything else (`any`, `not`,
    // `target_*`) stays in scope as Other.
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            Tree::Tok(t) if t.is_ident("test") => return Cfg::Test,
            Tree::Tok(t) if t.is_ident("all") => {
                if let Some(g) = group_at(trees, i + 1, '(') {
                    return match classify_cfg(&g.trees) {
                        Cfg::None => Cfg::Other,
                        c => c,
                    };
                }
                i += 1;
            }
            Tree::Tok(t) if t.is_ident("feature") => {
                if punct_at(trees, i + 1, "=") {
                    if let Some(Tree::Tok(lit)) = trees.get(i + 2) {
                        if matches!(&lit.tok, Tok::Lit(s) if s == "\"sanitize\"") {
                            return Cfg::Sanitize;
                        }
                    }
                }
                return Cfg::Other;
            }
            Tree::Tok(t) if t.is_ident("any") || t.is_ident("not") => return Cfg::Other,
            _ => i += 1,
        }
    }
    Cfg::Other
}

/// Classify one attribute group (the inside of the `[...]`).
fn classify_attr(g: &Group) -> Attrs {
    let mut out = Attrs::default();
    match ident_at(&g.trees, 0) {
        Some("test") if g.trees.len() == 1 => out.test_attr = true,
        Some("cfg") => {
            if let Some(inner) = group_at(&g.trees, 1, '(') {
                out.cfg = Some(classify_cfg(&inner.trees));
            }
        }
        _ => {}
    }
    out
}

/// Consume leading attributes (`#[…]` and inner `#![…]`) at `i`.
fn parse_attrs(trees: &[Tree], mut i: usize) -> (Attrs, usize) {
    let mut acc = Attrs::default();
    while punct_at(trees, i, "#") {
        let gi = if punct_at(trees, i + 1, "!") {
            i + 2
        } else {
            i + 1
        };
        let Some(g) = group_at(trees, gi, '[') else {
            break;
        };
        let a = classify_attr(g);
        acc.test_attr |= a.test_attr;
        if let Some(cfg) = a.cfg {
            acc.cfg = Some(acc.cfg.map_or(cfg, |prev| prev.and(cfg)));
        }
        i = gi + 1;
    }
    (acc, i)
}

// ------------------------------------------------------------------ items

/// Item-position keywords that anchor qualifier lookahead.
const ITEM_ANCHORS: [&str; 5] = ["fn", "trait", "impl", "extern", "mod"];

fn parse_items(trees: &[Tree]) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        let (attrs, after_attrs) = parse_attrs(trees, i);
        i = after_attrs;
        let cfg = attrs.cfg.unwrap_or(Cfg::None);

        // Qualifiers: `pub(…)`, and const/unsafe/async/default only when
        // an item keyword follows within a few tokens (so `const X: u32`
        // is not mistaken for a qualified item).
        loop {
            match ident_at(trees, i) {
                Some("pub") => {
                    i += 1;
                    if group_at(trees, i, '(').is_some() {
                        i += 1;
                    }
                }
                Some("default") if looks_like_item(trees, i + 1) => i += 1,
                Some("const") | Some("unsafe") | Some("async") if looks_like_item(trees, i + 1) => {
                    i += 1;
                }
                Some("extern")
                    if matches!(tok_at(trees, i + 1), Some(t) if matches!(&t.tok, Tok::Lit(_)))
                        && ident_at(trees, i + 2) == Some("fn") =>
                {
                    i += 2; // `extern "C"` before `fn`
                }
                _ => break,
            }
        }

        let Some(kw) = ident_at(trees, i) else {
            i += 1;
            continue;
        };
        let line = tok_at(trees, i).map(|t| t.line).unwrap_or(1);
        match kw {
            "fn" => {
                let (item, ni) = parse_fn(trees, i, &attrs, cfg);
                items.push(item);
                i = ni;
            }
            "mod" => {
                let name = ident_at(trees, i + 1).unwrap_or("?").to_string();
                if let Some(g) = group_at(trees, i + 2, '{') {
                    items.push(Item {
                        kind: ItemKind::Mod {
                            name,
                            items: Some(parse_items(&g.trees)),
                        },
                        line,
                        cfg,
                    });
                    i += 3;
                } else {
                    items.push(Item {
                        kind: ItemKind::Mod { name, items: None },
                        line,
                        cfg,
                    });
                    i = skip_past_semi(trees, i + 2);
                }
            }
            "impl" => {
                let (item, ni) = parse_impl(trees, i, cfg);
                items.push(item);
                i = ni;
            }
            "trait" => {
                let name = ident_at(trees, i + 1).unwrap_or("?").to_string();
                let mut j = i + 2;
                while j < trees.len() && group_at(trees, j, '{').is_none() {
                    if punct_at(trees, j, ";") {
                        break; // trait alias
                    }
                    j += 1;
                }
                let inner = group_at(trees, j, '{')
                    .map(|g| parse_items(&g.trees))
                    .unwrap_or_default();
                items.push(Item {
                    kind: ItemKind::Trait { name, items: inner },
                    line,
                    cfg,
                });
                i = j + 1;
            }
            "use" => {
                let mut j = i + 1;
                while j < trees.len() && !punct_at(trees, j, ";") {
                    j += 1;
                }
                let mut imports = Vec::new();
                parse_use_tree(&trees[i + 1..j], &[], &mut imports);
                items.push(Item {
                    kind: ItemKind::Use { imports },
                    line,
                    cfg,
                });
                i = j + 1;
            }
            "struct" | "enum" | "union" => {
                let name = ident_at(trees, i + 1).map(str::to_string);
                items.push(Item {
                    kind: ItemKind::Other {
                        keyword: kw.to_string(),
                        name,
                    },
                    line,
                    cfg,
                });
                // Body `{…}` ends the item; tuple struct / unit struct
                // ends at `;`.
                let mut j = i + 1;
                loop {
                    if j >= trees.len() || punct_at(trees, j, ";") {
                        i = j + 1;
                        break;
                    }
                    if group_at(trees, j, '{').is_some() {
                        i = j + 1;
                        break;
                    }
                    j += 1;
                }
            }
            "macro_rules" => {
                items.push(Item {
                    kind: ItemKind::Other {
                        keyword: kw.to_string(),
                        name: ident_at(trees, i + 2).map(str::to_string),
                    },
                    line,
                    cfg,
                });
                // `macro_rules` `!` `name` `{…}`
                i += 3;
                if matches!(trees.get(i), Some(Tree::Group(_))) {
                    i += 1;
                }
            }
            "extern" => {
                // `extern crate x;` or an `extern "C" { … }` block.
                let mut j = i + 1;
                while j < trees.len() && !punct_at(trees, j, ";") {
                    if let Some(g) = group_at(trees, j, '{') {
                        items.extend(parse_items(&g.trees));
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                i = if punct_at(trees, j, ";") { j + 1 } else { j };
            }
            "static" | "const" | "type" => {
                items.push(Item {
                    kind: ItemKind::Other {
                        keyword: kw.to_string(),
                        name: ident_at(trees, i + 1)
                            .filter(|n| *n != "mut")
                            .or_else(|| ident_at(trees, i + 2))
                            .map(str::to_string),
                    },
                    line,
                    cfg,
                });
                i = skip_past_semi(trees, i + 1);
            }
            _ => {
                // Item-position macro invocation (`include!(…);`) or
                // something unmodeled: advance structurally.
                let (_, after_path) = read_path(trees, i);
                if punct_at(trees, after_path, "!")
                    && matches!(trees.get(after_path + 1), Some(Tree::Group(_)))
                {
                    i = after_path + 2;
                } else {
                    i += 1;
                }
            }
        }
    }
    items
}

/// Does an item keyword appear within the next couple of trees? Guards
/// qualifier consumption (`const fn` vs `const X: u32 = …`).
fn looks_like_item(trees: &[Tree], i: usize) -> bool {
    for k in 0..3 {
        match ident_at(trees, i + k) {
            Some(w) if ITEM_ANCHORS.contains(&w) => return true,
            Some("const") | Some("unsafe") | Some("async") | Some("default") => continue,
            Some(_) | None => {
                // `extern "C" fn` has a literal between.
                if matches!(tok_at(trees, i + k), Some(t) if matches!(&t.tok, Tok::Lit(_))) {
                    continue;
                }
                return false;
            }
        }
    }
    false
}

/// Advance past the next top-level `;`.
fn skip_past_semi(trees: &[Tree], mut i: usize) -> usize {
    while i < trees.len() && !punct_at(trees, i, ";") {
        i += 1;
    }
    i + 1
}

fn parse_fn(trees: &[Tree], i: usize, attrs: &Attrs, cfg: Cfg) -> (Item, usize) {
    let line = tok_at(trees, i).map(|t| t.line).unwrap_or(1);
    let name = ident_at(trees, i + 1).unwrap_or("?").to_string();
    let mut j = i + 2;
    if punct_at(trees, j, "<") {
        j = skip_generics(trees, j);
    }
    // Parameter list.
    if group_at(trees, j, '(').is_some() {
        j += 1;
    }
    // Return type / where clause, up to the body or `;`.
    let mut body = None;
    while j < trees.len() {
        if let Some(g) = group_at(trees, j, '{') {
            body = Some(parse_exprs(&g.trees));
            j += 1;
            break;
        }
        if punct_at(trees, j, ";") {
            j += 1;
            break;
        }
        j += 1;
    }
    (
        Item {
            kind: ItemKind::Fn(FnItem {
                name,
                line,
                body,
                has_test_attr: attrs.test_attr,
            }),
            line,
            cfg,
        },
        j,
    )
}

fn parse_impl(trees: &[Tree], i: usize, cfg: Cfg) -> (Item, usize) {
    let line = tok_at(trees, i).map(|t| t.line).unwrap_or(1);
    let mut j = i + 1;
    if punct_at(trees, j, "<") {
        j = skip_generics(trees, j);
    }
    // Collect path idents until the body; `for` splits trait from type.
    let mut before_for: Vec<String> = Vec::new();
    let mut after_for: Vec<String> = Vec::new();
    let mut saw_for = false;
    let mut body = None;
    while j < trees.len() {
        if let Some(g) = group_at(trees, j, '{') {
            body = Some(parse_items(&g.trees));
            j += 1;
            break;
        }
        if punct_at(trees, j, "<") {
            j = skip_generics(trees, j);
            continue;
        }
        match ident_at(trees, j) {
            Some("for") => saw_for = true,
            Some("where") => {
                // Skip the where clause structurally.
                while j < trees.len() && group_at(trees, j, '{').is_none() {
                    j += 1;
                }
                continue;
            }
            Some(seg) if seg != "dyn" && seg != "mut" => {
                if saw_for {
                    after_for.push(seg.to_string());
                } else {
                    before_for.push(seg.to_string());
                }
            }
            _ => {}
        }
        j += 1;
    }
    let (trait_name, type_path) = if saw_for {
        (before_for.last().cloned(), after_for)
    } else {
        (None, before_for)
    };
    (
        Item {
            kind: ItemKind::Impl {
                type_name: type_path.last().cloned().unwrap_or_else(|| "?".to_string()),
                trait_name,
                items: body.unwrap_or_default(),
            },
            line,
            cfg,
        },
        j,
    )
}

/// Expand a `use` tree into flat imports. `prefix` is the path so far.
fn parse_use_tree(trees: &[Tree], prefix: &[String], out: &mut Vec<UseImport>) {
    // Split on top-level commas (inside `{…}` groups recursion handles
    // nesting).
    let mut start = 0usize;
    let mut k = 0usize;
    while k <= trees.len() {
        let at_comma = k < trees.len() && punct_at(trees, k, ",");
        if at_comma || k == trees.len() {
            parse_one_use(&trees[start..k], prefix, out);
            start = k + 1;
        }
        k += 1;
    }
}

fn parse_one_use(trees: &[Tree], prefix: &[String], out: &mut Vec<UseImport>) {
    if trees.is_empty() {
        return;
    }
    let mut path = prefix.to_vec();
    let mut i = 0usize;
    let mut alias: Option<String> = None;
    while i < trees.len() {
        if let Some(g) = group_at(trees, i, '{') {
            parse_use_tree(&g.trees, &path, out);
            return;
        }
        if punct_at(trees, i, "*") {
            out.push(UseImport {
                path,
                alias: String::new(),
                glob: true,
            });
            return;
        }
        match ident_at(trees, i) {
            Some("as") => {
                alias = ident_at(trees, i + 1).map(str::to_string);
                i += 2;
            }
            Some("self") if !path.is_empty() => {
                // `use a::b::{self}` imports `b` itself.
                i += 1;
            }
            Some(seg) => {
                path.push(seg.to_string());
                i += 1;
            }
            None => i += 1, // `::` separators
        }
    }
    if path.is_empty() {
        return;
    }
    let alias = alias.unwrap_or_else(|| path.last().cloned().unwrap_or_default());
    out.push(UseImport {
        path,
        alias,
        glob: false,
    });
}

// ------------------------------------------------------------ expressions

/// Keywords that terminate/interrupt expressions and can never end one
/// (drives the `expr[…]` vs `[array]` heuristic).
fn ends_expr_ident(word: &str) -> bool {
    !matches!(
        word,
        "if" | "else"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "unsafe"
            | "async"
            | "dyn"
            | "as"
            | "where"
            | "for"
            | "while"
            | "loop"
            | "fn"
            | "impl"
            | "yield"
    )
}

fn parse_exprs(trees: &[Tree]) -> Vec<Expr> {
    let mut out = Vec::new();
    let mut i = 0usize;
    // Does the previous token/group end an expression? (`x[i]` indexes,
    // `= [1, 2]` is an array literal.)
    let mut prev_expr = false;
    while i < trees.len() {
        match &trees[i] {
            Tree::Tok(t) => match &t.tok {
                Tok::Punct(p) if p == "#" => {
                    let gi = if punct_at(trees, i + 1, "!") {
                        i + 2
                    } else {
                        i + 1
                    };
                    let Some(g) = group_at(trees, gi, '[') else {
                        i += 1;
                        prev_expr = false;
                        continue;
                    };
                    let attrs = classify_attr(g);
                    i = gi + 1;
                    prev_expr = false;
                    if let Some(cfg @ (Cfg::Test | Cfg::Sanitize)) = attrs.cfg {
                        // Gate the next statement: a bare block, or
                        // everything up to the next top-level `;`.
                        if let Some(bg) = group_at(trees, i, '{') {
                            out.push(Expr::Gated {
                                cfg,
                                body: parse_exprs(&bg.trees),
                            });
                            i += 1;
                        } else {
                            let start = i;
                            while i < trees.len() && !punct_at(trees, i, ";") {
                                i += 1;
                            }
                            out.push(Expr::Gated {
                                cfg,
                                body: parse_exprs(&trees[start..i]),
                            });
                        }
                    }
                }
                Tok::Ident(k) if k == "for" || k == "while" => {
                    let kwline = t.line;
                    let mut j = i + 1;
                    while j < trees.len() && group_at(trees, j, '{').is_none() {
                        j += 1;
                    }
                    // Header expressions (the iterator / condition).
                    out.extend(parse_exprs(&trees[i + 1..j]));
                    if let Some(g) = group_at(trees, j, '{') {
                        out.push(Expr::Loop {
                            line: kwline,
                            body: parse_exprs(&g.trees),
                        });
                        i = j + 1;
                    } else {
                        i = j;
                    }
                    prev_expr = true;
                }
                Tok::Ident(k) if k == "loop" => {
                    if let Some(g) = group_at(trees, i + 1, '{') {
                        out.push(Expr::Loop {
                            line: t.line,
                            body: parse_exprs(&g.trees),
                        });
                        i += 2;
                    } else {
                        i += 1;
                    }
                    prev_expr = true;
                }
                Tok::Ident(k) if k == "fn" => {
                    // Nested fn: its body is attributed to the enclosing
                    // fn (documented over-approximation).
                    let mut j = i + 1;
                    while j < trees.len() && group_at(trees, j, '{').is_none() {
                        if punct_at(trees, j, ";") {
                            break;
                        }
                        j += 1;
                    }
                    if let Some(g) = group_at(trees, j, '{') {
                        out.push(Expr::Group {
                            children: parse_exprs(&g.trees),
                        });
                        i = j + 1;
                    } else {
                        i = j + 1;
                    }
                    prev_expr = false;
                }
                Tok::Ident(k) if !ends_expr_ident(k) => {
                    i += 1;
                    prev_expr = false;
                }
                Tok::Ident(_) => {
                    let (path, j) = read_path(trees, i);
                    let last_line = tok_at(trees, j.saturating_sub(1))
                        .map(|t| t.line)
                        .unwrap_or(t.line);
                    if let Some(g) = group_at(trees, j, '(') {
                        out.push(Expr::Call {
                            path,
                            line: last_line,
                            args: parse_exprs(&g.trees),
                        });
                        i = j + 1;
                    } else if let (true, Some(Tree::Group(g))) =
                        (punct_at(trees, j, "!"), trees.get(j + 1))
                    {
                        out.push(Expr::MacroCall {
                            name: path.last().cloned().unwrap_or_default(),
                            line: last_line,
                            args: parse_exprs(&g.trees),
                        });
                        i = j + 2;
                    } else {
                        out.push(Expr::PathRef {
                            path,
                            line: last_line,
                        });
                        i = j;
                    }
                    prev_expr = true;
                }
                Tok::Punct(p) if p == "." => {
                    if let Some(name) = ident_at(trees, i + 1) {
                        let mut j = i + 2;
                        if punct_at(trees, j, "::") && punct_at(trees, j + 1, "<") {
                            j = skip_generics(trees, j + 1);
                        }
                        if let Some(g) = group_at(trees, j, '(') {
                            out.push(Expr::MethodCall {
                                name: name.to_string(),
                                line: tok_at(trees, i + 1).map(|t| t.line).unwrap_or(t.line),
                                args: parse_exprs(&g.trees),
                            });
                            i = j + 1;
                        } else {
                            i += 2; // field access / `.await`
                        }
                    } else {
                        i += 1; // tuple index `.0`
                        if matches!(tok_at(trees, i), Some(t) if matches!(&t.tok, Tok::Lit(_))) {
                            i += 1;
                        }
                    }
                    prev_expr = true;
                }
                Tok::Punct(p) if (p == "|" || p == "||") && !prev_expr => {
                    // Closure. Find the parameter-closing `|`, then take
                    // the rest of this nesting level (up to `,`/`;`) as
                    // the body.
                    let body_start = if p == "||" {
                        i + 1
                    } else {
                        let mut j = i + 1;
                        while j < trees.len()
                            && !punct_at(trees, j, "|")
                            && !punct_at(trees, j, ";")
                        {
                            j += 1;
                        }
                        if !punct_at(trees, j, "|") {
                            i += 1;
                            prev_expr = false;
                            continue;
                        }
                        j + 1
                    };
                    let mut end = body_start;
                    while end < trees.len()
                        && !punct_at(trees, end, ",")
                        && !punct_at(trees, end, ";")
                    {
                        end += 1;
                    }
                    out.push(Expr::Closure {
                        line: t.line,
                        body: parse_exprs(&trees[body_start..end]),
                    });
                    i = end;
                    prev_expr = true;
                }
                Tok::Punct(p) => {
                    prev_expr = p == "?";
                    i += 1;
                }
                Tok::Lit(_) => {
                    i += 1;
                    prev_expr = true;
                }
                Tok::Lifetime(_) => {
                    i += 1;
                    prev_expr = false;
                }
                Tok::Open(_) | Tok::Close(_) => {
                    // Never appears: build_trees folded delimiters.
                    i += 1;
                }
            },
            Tree::Group(g) => {
                let children = parse_exprs(&g.trees);
                if g.delim == '[' && prev_expr {
                    out.push(Expr::Index {
                        line: g.open_line,
                        children,
                    });
                } else {
                    out.push(Expr::Group { children });
                }
                // `(…)`, `{…}`, `[…]` all end an expression.
                prev_expr = true;
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn file(src: &str) -> File {
        parse_file(src).expect("parse")
    }

    fn first_fn(f: &File) -> &FnItem {
        f.items
            .iter()
            .find_map(|i| match &i.kind {
                ItemKind::Fn(f) => Some(f),
                _ => None,
            })
            .expect("a fn")
    }

    fn flat<'e>(exprs: &'e [Expr], out: &mut Vec<&'e Expr>) {
        for e in exprs {
            out.push(e);
            flat(e.children(), out);
        }
    }

    fn all_nodes(f: &FnItem) -> Vec<&Expr> {
        let mut v = Vec::new();
        flat(f.body.as_deref().unwrap_or(&[]), &mut v);
        v
    }

    #[test]
    fn fn_with_call_and_method() {
        let f = file("fn f(x: &[f64]) -> f64 { helper(x).iter().sum() }");
        let nodes = all_nodes(first_fn(&f));
        assert!(nodes
            .iter()
            .any(|e| matches!(e, Expr::Call { path, .. } if path == &["helper"])));
        assert!(nodes
            .iter()
            .any(|e| matches!(e, Expr::MethodCall { name, .. } if name == "sum")));
    }

    #[test]
    fn loops_nest_and_index_detected() {
        let f = file("fn f(a: &[f64]) { for i in 0..a.len() { let x = a[i]; use_it(x); } }");
        let nodes = all_nodes(first_fn(&f));
        let the_loop = nodes
            .iter()
            .find(|e| matches!(e, Expr::Loop { .. }))
            .unwrap();
        let mut inner = Vec::new();
        flat(the_loop.children(), &mut inner);
        assert!(inner.iter().any(|e| matches!(e, Expr::Index { .. })));
        assert!(inner
            .iter()
            .any(|e| matches!(e, Expr::Call { path, .. } if path == &["use_it"])));
    }

    #[test]
    fn array_literal_is_not_indexing() {
        let f = file("fn f() { let a = [1, 2, 3]; g(&a); }");
        assert!(!all_nodes(first_fn(&f))
            .iter()
            .any(|e| matches!(e, Expr::Index { .. })));
    }

    #[test]
    fn macro_calls_and_paths() {
        let f = file("fn f() { panic!(\"boom {}\", x); std::mem::drop(y); }");
        let nodes = all_nodes(first_fn(&f));
        assert!(nodes
            .iter()
            .any(|e| matches!(e, Expr::MacroCall { name, .. } if name == "panic")));
        assert!(nodes
            .iter()
            .any(|e| matches!(e, Expr::Call { path, .. } if path == &["std", "mem", "drop"])));
    }

    #[test]
    fn closures_are_marked() {
        let f = file("fn f(xs: &[u32]) -> Vec<u32> { xs.iter().map(|x| double(*x)).collect() }");
        let nodes = all_nodes(first_fn(&f));
        assert!(nodes.iter().any(|e| matches!(e, Expr::Closure { .. })));
        assert!(nodes
            .iter()
            .any(|e| matches!(e, Expr::Call { path, .. } if path == &["double"])));
    }

    #[test]
    fn cfg_gates_items_and_statements() {
        let src = "#[cfg(test)]\nmod tests { fn t() {} }\n\
                   fn live() { #[cfg(feature = \"sanitize\")] check_all(); real(); }\n";
        let f = file(src);
        assert!(matches!(
            f.items
                .iter()
                .find(|i| matches!(i.kind, ItemKind::Mod { .. })),
            Some(Item { cfg: Cfg::Test, .. })
        ));
        let live = first_fn(&f);
        let nodes = all_nodes(live);
        let gated = nodes
            .iter()
            .find(|e| {
                matches!(
                    e,
                    Expr::Gated {
                        cfg: Cfg::Sanitize,
                        ..
                    }
                )
            })
            .expect("gated stmt");
        let mut inner = Vec::new();
        flat(gated.children(), &mut inner);
        assert!(inner
            .iter()
            .any(|e| matches!(e, Expr::Call { path, .. } if path == &["check_all"])));
        assert!(nodes
            .iter()
            .any(|e| matches!(e, Expr::Call { path, .. } if path == &["real"])));
    }

    #[test]
    fn impl_blocks_carry_type_and_trait() {
        let src = "impl Display for Mat { fn fmt(&self) {} }\nimpl Mat { fn new() -> Mat { Mat } }";
        let f = file(src);
        let impls: Vec<_> = f
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Impl {
                    type_name,
                    trait_name,
                    items,
                } => Some((type_name.clone(), trait_name.clone(), items.len())),
                _ => None,
            })
            .collect();
        assert_eq!(impls[0], ("Mat".into(), Some("Display".into()), 1));
        assert_eq!(impls[1], ("Mat".into(), None, 1));
    }

    #[test]
    fn use_trees_flatten() {
        let f = file("use crate::par::{evaluate, PhaseTiming as PT};\nuse slim_linalg::*;\n");
        let imports: Vec<_> = f
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Use { imports } => Some(imports.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert!(imports
            .iter()
            .any(|u| u.alias == "evaluate" && u.path == ["crate", "par", "evaluate"]));
        assert!(imports
            .iter()
            .any(|u| u.alias == "PT" && u.path.last().unwrap() == "PhaseTiming"));
        assert!(imports.iter().any(|u| u.glob && u.path == ["slim_linalg"]));
    }

    #[test]
    fn unbalanced_delimiters_error() {
        assert!(parse_file("fn f() { (").is_err());
        assert!(parse_file("fn f() } ").is_err());
    }

    #[test]
    fn const_item_is_not_a_qualifier() {
        let f = file("const N: usize = 61;\nconst fn k() -> u32 { 1 }\n");
        let names: Vec<_> = f
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Other { keyword, name } if keyword == "const" => name.clone(),
                ItemKind::Fn(f) => Some(format!("fn:{}", f.name)),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["N".to_string(), "fn:k".to_string()]);
    }

    #[test]
    fn ordering_paths_surface_as_pathrefs() {
        let f = file("fn f(a: &AtomicU64) { a.store(1, Ordering::Relaxed); }");
        let nodes = all_nodes(first_fn(&f));
        assert!(nodes
            .iter()
            .any(|e| matches!(e, Expr::PathRef { path, .. } if path == &["Ordering", "Relaxed"])));
    }
}
