//! The repo-specific rules: what clippy cannot express about this
//! codebase's determinism and robustness contracts.

use crate::lexer::PreparedLine;

/// A lint rule identifier. Stable: these ids appear in waiver comments
/// and in the committed ratchet baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `HashMap`/`HashSet` in a report/journal/aggregation path.
    DetHashIter,
    /// Raw f64 accumulation outside the blessed Neumaier reducer.
    DetFloatAccum,
    /// `==`/`!=` against a float literal in non-test code.
    DetFloatCmp,
    /// `Instant::now`/`SystemTime` wall-clock reads outside the
    /// observability crates.
    DetWallclock,
    /// `unwrap`/`expect`/`panic!` family in library non-test code.
    RobUnwrap,
    /// `unsafe` without an adjacent `// SAFETY:` comment.
    RobSafety,
    /// A panic site (panic-family macro, `unwrap`/`expect`, `[]`
    /// indexing) reachable from a declared `// check: hot` entry point.
    /// Interprocedural: needs the call graph.
    PanicFreeHotPath,
    /// An `Ordering::*` use outside the site policy (`Relaxed` only in
    /// obs/trace counters, `SeqCst` only with a waiver, `Release`
    /// stores paired with `Acquire` loads). Interprocedural.
    AtomicOrdering,
    /// An allocating call (`Vec::new`, `push`, `clone`, `format!`,
    /// `collect`, …) inside a loop of a hot-path function.
    /// Interprocedural.
    AllocInHotLoop,
    /// A `// check: allow(...)` waiver that suppressed no finding
    /// (only reported under `--stale-waivers`).
    StaleWaiver,
}

/// All rules, in reporting order.
pub const ALL_RULES: [RuleId; 10] = [
    RuleId::DetHashIter,
    RuleId::DetFloatAccum,
    RuleId::DetFloatCmp,
    RuleId::DetWallclock,
    RuleId::RobUnwrap,
    RuleId::RobSafety,
    RuleId::PanicFreeHotPath,
    RuleId::AtomicOrdering,
    RuleId::AllocInHotLoop,
    RuleId::StaleWaiver,
];

impl RuleId {
    /// The stable name used in waivers and the baseline file.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::DetHashIter => "det-hash-iter",
            RuleId::DetFloatAccum => "det-float-accum",
            RuleId::DetFloatCmp => "det-float-cmp",
            RuleId::DetWallclock => "det-wallclock",
            RuleId::RobUnwrap => "rob-unwrap",
            RuleId::RobSafety => "rob-safety",
            RuleId::PanicFreeHotPath => "panic-free-hot-path",
            RuleId::AtomicOrdering => "atomic-ordering",
            RuleId::AllocInHotLoop => "alloc-in-hot-loop",
            RuleId::StaleWaiver => "stale-waiver",
        }
    }

    /// Line rules run per-line over the blanked source in
    /// [`check_file`]; the others are interprocedural and run from the
    /// AST/call-graph driver (`interproc`).
    pub fn is_line_rule(self) -> bool {
        !matches!(
            self,
            RuleId::PanicFreeHotPath
                | RuleId::AtomicOrdering
                | RuleId::AllocInHotLoop
                | RuleId::StaleWaiver
        )
    }

    /// Parse a rule name (as written in a waiver comment).
    pub fn parse(name: &str) -> Option<RuleId> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// One-line rationale shown with each diagnostic.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::DetHashIter => {
                "HashMap/HashSet in a report/journal/aggregation path: iteration \
                 order is nondeterministic; use BTreeMap/BTreeSet or sort before output"
            }
            RuleId::DetFloatAccum => {
                "raw f64 accumulation in a likelihood/linalg crate outside the blessed \
                 kernels; route reductions through NeumaierSum (slim_linalg::vecops) \
                 so totals are bit-deterministic and carry an error bound"
            }
            RuleId::DetFloatCmp => {
                "exact float comparison against a literal; compare .to_bits(), use a \
                 tolerance, or waive with the reason the exact compare is intended"
            }
            RuleId::DetWallclock => {
                "wall-clock read (Instant::now / SystemTime) outside the obs/trace/bench \
                 crates; timestamps must never feed deterministic outputs — route timing \
                 through slim-obs/slim-trace, or waive with where the value goes"
            }
            RuleId::RobUnwrap => {
                "unwrap/expect/panic in library non-test code; return a typed error, \
                 or waive with the invariant that makes the panic unreachable"
            }
            RuleId::RobSafety => "unsafe without a preceding // SAFETY: comment",
            RuleId::PanicFreeHotPath => {
                "panic site reachable from a declared hot entry point; hot kernels \
                 must be total — return a typed error above the kernel, prove the \
                 invariant and waive, or restructure so the panic is unreachable"
            }
            RuleId::AtomicOrdering => {
                "atomic ordering outside the site policy: Relaxed is for obs/trace \
                 counters only, SeqCst needs a waiver naming why weaker orders fail, \
                 and Release stores must pair with Acquire loads in the same file"
            }
            RuleId::AllocInHotLoop => {
                "allocation inside a loop of a hot-path function; hoist into a \
                 reusable scratch buffer (the lane-padded workspace discipline) or \
                 waive with why the allocation is cold"
            }
            RuleId::StaleWaiver => {
                "waiver suppressed no finding; delete it (or fix the site it was \
                 supposed to cover) so the ratchet stays honest"
            }
        }
    }

    /// Multi-paragraph rationale and waiver syntax, for `--explain`.
    pub fn explain(self) -> String {
        // Waiver examples are assembled with `format!` so this source
        // file never contains a literal waiver for a real rule (which
        // the stale-waiver rule itself would flag).
        let waiver = format!("// check: {}({}) <reason>", "allow", self.name());
        let body = match self {
            RuleId::DetHashIter => {
                "HashMap/HashSet iteration order is randomized per process, so any \
                 report, journal, or aggregation that iterates one is \
                 nondeterministic across runs. Use BTreeMap/BTreeSet, or collect \
                 and sort before output.\n\nScope: batch, obs, and cli src trees \
                 (the output paths)."
            }
            RuleId::DetFloatAccum => {
                "Float addition is not associative: raw `+=` loops and iterator \
                 `.sum()` reductions give different totals under different \
                 vectorization or summation orders. Likelihood totals must be \
                 bit-deterministic, so reductions in the lik/linalg crates go \
                 through the blessed NeumaierSum kernels (slim_linalg::vecops), \
                 which fix the order and carry a compensation term.\n\nScope: \
                 crates/lik/src and crates/linalg/src, minus the blessed kernel \
                 modules themselves."
            }
            RuleId::DetFloatCmp => {
                "`x == 1.0` is exact bit comparison; after any arithmetic the \
                 equality is a coin flip. Compare `.to_bits()` when bit equality \
                 is really meant, or use a tolerance. Waive when the exact compare \
                 is intentional (e.g. sentinel values never produced by \
                 arithmetic).\n\nScope: all first-party code."
            }
            RuleId::DetWallclock => {
                "Wall-clock reads (Instant::now, SystemTime) in compute code leak \
                 nondeterminism into outputs and make runs unreproducible. Timing \
                 belongs to the observability layer: route it through slim-obs / \
                 slim-trace, which stamp events outside the deterministic \
                 core.\n\nScope: everything except obs, trace, bench, and vendor."
            }
            RuleId::RobUnwrap => {
                "unwrap/expect/panic in library code turns a recoverable condition \
                 into a process abort — in the daemon/batch north star, a dropped \
                 request. Return a typed error, or waive stating the invariant \
                 that makes the panic unreachable.\n\nScope: library code \
                 (binaries, benches, and the sanitize module are exempt)."
            }
            RuleId::RobSafety => {
                "Every `unsafe` block needs a `// SAFETY:` comment within the \
                 preceding few lines stating the invariant that makes it sound. \
                 No waiver form: write the SAFETY comment instead.\n\nScope: all \
                 code."
            }
            RuleId::PanicFreeHotPath => {
                "Functions marked with a `// check: hot` comment above their \
                 declaration (the lik pruning units, expm reconstruction, linalg \
                 SIMD kernels) are the per-site inner loops: a panic there kills a \
                 worker mid-shard. This rule walks the conservative call graph \
                 from every hot entry and reports panic-family macros \
                 (panic!/unreachable!/todo!/unimplemented!/assert!*), \
                 unwrap/expect, and `[]` indexing reachable in non-test, \
                 non-sanitize code. debug_assert! is exempt (compiled out in \
                 release).\n\nWaivers: on the panic site's line, waive that site; \
                 on a call site's line, cut that call edge (the callee is not \
                 explored through it); in the comment block above a fn \
                 declaration, absolve that fn's own body sites. Method calls \
                 resolve to every workspace method of that name and closure \
                 bodies belong to their enclosing fn, so reachability \
                 over-approximates — a waiver states why the site cannot fire, \
                 not why the path cannot be taken."
            }
            RuleId::AtomicOrdering => {
                "Site policy for every `Ordering::*` mention: Relaxed is legal \
                 only under crates/obs and crates/trace (statistical counters \
                 where staleness is fine); SeqCst is a smell everywhere (it hides \
                 the real protocol — name the reason in a waiver if truly \
                 needed); Acquire/Release/AcqRel are the blessed hand-off orders, \
                 but a file with Release stores and no Acquire loads (or vice \
                 versa) earns a pairing finding, because a one-sided protocol \
                 synchronizes nothing.\n\nScope: all first-party code, \
                 cfg(test) excluded."
            }
            RuleId::AllocInHotLoop => {
                "Allocation inside a loop of a hot-path function (reachable from \
                 a `// check: hot` entry) defeats the scratch-buffer discipline: \
                 the lane-padded workspaces exist so steady-state pruning does \
                 zero allocator round-trips. Flags Vec::new/with_capacity, \
                 Box::new, vec!/format!, and .push/.clone/.collect/.to_vec/\
                 .to_string/.to_owned inside loop bodies.\n\nWaive on the \
                 allocation's line when it is provably cold (first-call warmup, \
                 error paths)."
            }
            RuleId::StaleWaiver => {
                "A waiver that suppresses nothing is debt pretending to be \
                 documentation: the site it covered was fixed or moved, and the \
                 waiver now silently licenses a future regression. Under \
                 `--stale-waivers` (CI runs it), every valid waiver must suppress \
                 at least one finding or cut at least one hot-path edge; the rest \
                 are reported here. Fix: delete the waiver. There is no waiver \
                 for this rule."
            }
        };
        format!(
            "{} — {}\n\n{}\n\nWaiver syntax (same line, or comment line above):\n  {}\n",
            self.name(),
            self.summary(),
            body,
            waiver
        )
    }

    /// Does this rule apply to the file at `path` (workspace-relative,
    /// forward slashes)?
    pub fn applies_to(self, path: &str) -> bool {
        match self {
            // Output paths whose ordering reaches reports, journals,
            // metric snapshots, or the terminal.
            RuleId::DetHashIter => {
                path.starts_with("crates/batch/src/")
                    || path.starts_with("crates/obs/src/")
                    || path.starts_with("crates/cli/src/")
            }
            // The crates whose sums feed lnL. The blessed kernel modules
            // (vecops holds the Neumaier reducer; gemm/gemv/syrk/naive
            // ARE the accumulation kernels it is built from, and simd/
            // holds the dispatched microkernels those loops lower to) are
            // exempt.
            RuleId::DetFloatAccum => {
                const BLESSED: [&str; 5] = [
                    "crates/linalg/src/vecops.rs",
                    "crates/linalg/src/gemm.rs",
                    "crates/linalg/src/gemv.rs",
                    "crates/linalg/src/syrk.rs",
                    "crates/linalg/src/naive.rs",
                ];
                (path.starts_with("crates/lik/src/") || path.starts_with("crates/linalg/src/"))
                    && !BLESSED.contains(&path)
                    && !path.starts_with("crates/linalg/src/simd/")
            }
            RuleId::DetFloatCmp => true,
            // The observability crates' whole job is wall-clock time; the
            // bench harness measures it by definition; vendored stand-in
            // dependencies are not first-party code.
            RuleId::DetWallclock => {
                !(path.starts_with("crates/obs/")
                    || path.starts_with("crates/trace/")
                    || path.starts_with("crates/bench/")
                    || path.starts_with("vendor/"))
            }
            // Library code only: binaries (main.rs, src/bin), examples,
            // and the bench harness may panic at the top level. The
            // sanitizer module is exempt wholesale — its entire job is to
            // panic on violated invariants.
            RuleId::RobUnwrap => {
                !(path.ends_with("/main.rs")
                    || path.contains("/src/bin/")
                    || path.starts_with("examples/")
                    || path.starts_with("crates/bench/")
                    || path == "crates/linalg/src/sanitize.rs")
            }
            RuleId::RobSafety => true,
            // The interprocedural rules scope themselves through the
            // call graph / module map; vendored stand-ins are never
            // first-party hot-path code.
            RuleId::PanicFreeHotPath | RuleId::AtomicOrdering | RuleId::AllocInHotLoop => {
                !path.starts_with("vendor/")
            }
            RuleId::StaleWaiver => true,
        }
    }
}

/// One rule violation at one source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What was matched (for the human-readable report).
    pub what: String,
}

impl Diagnostic {
    /// `path:line: rule: what — summary` for terminal output.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {} — {}",
            self.path,
            self.line,
            self.rule.name(),
            self.what,
            self.rule.summary()
        )
    }
}

/// A parsed `// check: allow(<rule>) <reason>` waiver.
#[derive(Debug, Clone, PartialEq)]
pub struct Waiver {
    /// The rule being waived, or `Err(name)` for an unknown rule name.
    pub rule: Result<RuleId, String>,
    /// The justification text after the closing parenthesis.
    pub reason: String,
    /// 1-based line the waiver comment sits on.
    pub line: usize,
}

/// Extract every waiver on a raw line.
pub fn parse_waivers(raw: &str, line: usize) -> Vec<Waiver> {
    const TAG: &str = "check: allow(";
    let mut out = Vec::new();
    let mut rest = raw;
    let mut _offset = 0usize;
    while let Some(at) = rest.find(TAG) {
        let after = &rest[at + TAG.len()..];
        if let Some(close) = after.find(')') {
            let name = after[..close].trim();
            // Documentation that *mentions* the syntax (`allow(<rule>)`)
            // is not a waiver; only kebab-case names count, so a typo'd
            // real rule is still caught below.
            let kebab = |c: char| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-';
            if name.is_empty() || !name.chars().all(kebab) {
                rest = &after[close + 1..];
                continue;
            }
            let reason = after[close + 1..].trim();
            // A reason can be terminated by another waiver on the line.
            let reason = match reason.find(TAG) {
                Some(next) => reason[..next].trim_end_matches(['/', ' ']).trim(),
                None => reason,
            };
            out.push(Waiver {
                rule: RuleId::parse(name).ok_or_else(|| name.to_string()),
                reason: reason.to_string(),
                line,
            });
            rest = &after[close + 1..];
            _offset += at + TAG.len() + close + 1;
        } else {
            break;
        }
    }
    out
}

/// Malformed-waiver diagnostics for a file: unknown rule names and
/// missing reasons are themselves violations (of the rule being waived,
/// reported so a typo cannot silently disable a lint).
pub fn waiver_problems(path: &str, lines: &[PreparedLine]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for w in parse_waivers(&line.raw, i + 1) {
            match &w.rule {
                Err(name) => out.push(Diagnostic {
                    rule: RuleId::RobUnwrap,
                    path: path.to_string(),
                    line: i + 1,
                    what: format!("waiver names unknown rule `{name}`"),
                }),
                Ok(rule) if w.reason.is_empty() => out.push(Diagnostic {
                    rule: *rule,
                    path: path.to_string(),
                    line: i + 1,
                    what: format!("waiver for {} has no reason", rule.name()),
                }),
                Ok(_) => {}
            }
        }
    }
    out
}

/// Run every applicable line rule over a prepared file.
pub fn check_file(path: &str, lines: &[PreparedLine]) -> Vec<Diagnostic> {
    check_file_tracked(path, lines, &mut FileWaivers::parse(lines))
}

/// [`check_file`] with waiver-usage tracking: every waiver that
/// suppresses a finding is marked used in `waivers`, which feeds the
/// stale-waiver rule after the interprocedural pass has also had its
/// chance to consume waivers.
pub fn check_file_tracked(
    path: &str,
    lines: &[PreparedLine],
    waivers: &mut FileWaivers,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in ALL_RULES {
        if !rule.is_line_rule() || !rule.applies_to(path) {
            continue;
        }
        for (i, line) in lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let Some(what) = match_rule(rule, &line.code, lines, i) else {
                continue;
            };
            if waivers.waive(i + 1, rule) {
                continue;
            }
            out.push(Diagnostic {
                rule,
                path: path.to_string(),
                line: i + 1,
                what,
            });
        }
    }
    out.extend(waiver_problems(path, lines));
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// All valid waivers in one file, with per-waiver usage tracking. The
/// matching semantics replicate the original `is_waived` exactly: a
/// waiver covers findings on its own raw line, and on the line below
/// when the waiver's line is a comment-only line.
#[derive(Debug, Clone)]
pub struct FileWaivers {
    entries: Vec<WaiverEntry>,
}

#[derive(Debug, Clone)]
struct WaiverEntry {
    rule: RuleId,
    /// 1-based line the waiver sits on.
    line: usize,
    /// Does this waiver also cover `line + 1` (comment-only line)?
    covers_below: bool,
    /// Waivers in test code never count as stale.
    in_test: bool,
    used: bool,
}

impl FileWaivers {
    /// Parse every *valid* waiver (known rule, non-empty reason) in the
    /// file. Malformed waivers are handled by [`waiver_problems`].
    pub fn parse(lines: &[PreparedLine]) -> FileWaivers {
        let mut entries = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            for w in parse_waivers(&line.raw, i + 1) {
                if let Ok(rule) = w.rule {
                    if !w.reason.is_empty() {
                        entries.push(WaiverEntry {
                            rule,
                            line: i + 1,
                            covers_below: line.raw.trim_start().starts_with("//"),
                            in_test: line.in_test,
                            used: false,
                        });
                    }
                }
            }
        }
        FileWaivers { entries }
    }

    /// Is a finding of `rule` at `site_line` (1-based) waived? Marks
    /// every matching waiver used.
    pub fn waive(&mut self, site_line: usize, rule: RuleId) -> bool {
        let mut hit = false;
        for e in &mut self.entries {
            if e.rule == rule
                && (e.line == site_line || (e.covers_below && e.line + 1 == site_line))
            {
                e.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Is there an unconsumed-or-consumed waiver for `rule` anywhere in
    /// the comment/attribute block ending at `decl_line - 1`? Used for
    /// fn-level waivers on hot-path functions. Marks matches used.
    pub fn waive_block_above(
        &mut self,
        lines: &[PreparedLine],
        decl_line: usize,
        rule: RuleId,
    ) -> bool {
        let mut hit = false;
        let mut l = decl_line.saturating_sub(1);
        while l >= 1 {
            let raw = lines[l - 1].raw.trim_start();
            if !(raw.starts_with("//") || raw.starts_with('#')) {
                break;
            }
            for e in &mut self.entries {
                if e.rule == rule && e.line == l {
                    e.used = true;
                    hit = true;
                }
            }
            l -= 1;
        }
        hit
    }

    /// Does a *used or unused* waiver for `rule` exist covering
    /// `site_line`? (Non-marking lookup.)
    pub fn covers(&self, site_line: usize, rule: RuleId) -> bool {
        self.entries.iter().any(|e| {
            e.rule == rule && (e.line == site_line || (e.covers_below && e.line + 1 == site_line))
        })
    }

    /// Stale-waiver findings: valid, non-test waivers that never
    /// suppressed anything.
    pub fn stale(&self, path: &str) -> Vec<Diagnostic> {
        self.entries
            .iter()
            .filter(|e| !e.used && !e.in_test)
            .map(|e| Diagnostic {
                rule: RuleId::StaleWaiver,
                path: path.to_string(),
                line: e.line,
                what: format!("waiver for {} suppressed no finding", e.rule.name()),
            })
            .collect()
    }
}

/// Does `rule` fire on blanked line `code`? Returns what matched.
fn match_rule(rule: RuleId, code: &str, lines: &[PreparedLine], i: usize) -> Option<String> {
    match rule {
        RuleId::DetHashIter => {
            for token in ["HashMap", "HashSet"] {
                if contains_word(code, token) {
                    return Some(format!("{token} in an output path"));
                }
            }
            None
        }
        RuleId::DetFloatAccum => {
            for token in [".sum()", ".sum::<", ".product()", ".product::<"] {
                if code.contains(token) {
                    return Some(format!("iterator `{token}` reduction"));
                }
            }
            if let Some(p) = code.find("+=") {
                // `x += 1;`-style integer counters are not float
                // accumulation; skip pure integer-literal increments.
                let rhs = code[p + 2..].trim();
                // The statement may be followed by `;` and closing braces
                // on the same line; judge only the expression itself.
                let rhs = match rhs.find(';') {
                    Some(semi) => rhs[..semi].trim(),
                    None => rhs,
                };
                let integer_literal =
                    !rhs.is_empty() && rhs.chars().all(|c| c.is_ascii_digit() || c == '_');
                if !integer_literal {
                    return Some("`+=` accumulation".to_string());
                }
            }
            None
        }
        RuleId::DetFloatCmp => float_cmp_match(code),
        RuleId::DetWallclock => {
            // `Instant::now` is a path, not a bare word (`now` alone is
            // too common); `SystemTime` is a type name.
            if code.contains("Instant::now") {
                return Some("`Instant::now` wall-clock read".to_string());
            }
            if contains_word(code, "SystemTime") {
                return Some("`SystemTime` wall-clock read".to_string());
            }
            None
        }
        RuleId::RobUnwrap => {
            for token in [
                ".unwrap()",
                ".expect(",
                "panic!(",
                "unreachable!(",
                "todo!(",
                "unimplemented!(",
            ] {
                if code.contains(token) {
                    return Some(format!("`{}`", token.trim_end_matches(['(', ')'])));
                }
            }
            None
        }
        RuleId::RobSafety => {
            if !contains_word(code, "unsafe") {
                return None;
            }
            let mut j = i;
            for _ in 0..4 {
                if lines[j].raw.contains("SAFETY:") {
                    return None;
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            Some("`unsafe` without a // SAFETY: comment".to_string())
        }
        // The interprocedural rules never run through the per-line
        // matcher; `check_file_tracked` filters on `is_line_rule`.
        RuleId::PanicFreeHotPath
        | RuleId::AtomicOrdering
        | RuleId::AllocInHotLoop
        | RuleId::StaleWaiver => None,
    }
}

/// Word-boundary substring search.
fn contains_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find(word) {
        let start = from + at;
        let end = start + word.len();
        let pre_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let post_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Find `==`/`!=` with a float literal on either side.
fn float_cmp_match(code: &str) -> Option<String> {
    for op in ["==", "!="] {
        let mut from = 0usize;
        while let Some(at) = code[from..].find(op) {
            let p = from + at;
            // Skip `!==`-like runs and fat arrows cannot occur (`=>` has
            // no second `=`); `<=`/`>=` contain a single `=` and never
            // match a two-character search for `==`.
            let left = last_token(&code[..p]);
            let right = first_token(&code[p + 2..]);
            if is_float_literal(left) || is_float_literal(right) {
                return Some(format!("`{left} {op} {right}` exact float comparison"));
            }
            from = p + 2;
        }
    }
    None
}

/// Trailing operand token of an expression prefix.
fn last_token(prefix: &str) -> &str {
    let trimmed = prefix.trim_end();
    let boundary = trimmed
        .rfind(|c: char| {
            c.is_whitespace() || matches!(c, '(' | ',' | '&' | '|' | '{' | ';' | '=' | '<' | '>')
        })
        .map(|b| b + 1)
        .unwrap_or(0);
    &trimmed[boundary..]
}

/// Leading operand token of an expression suffix.
fn first_token(suffix: &str) -> &str {
    let trimmed = suffix.trim_start();
    let boundary = trimmed
        .find(|c: char| c.is_whitespace() || matches!(c, ')' | ',' | '&' | '|' | '}' | ';' | '{'))
        .unwrap_or(trimmed.len());
    &trimmed[..boundary]
}

/// Is `token` a float literal (`1.0`, `0.`, `1e-9`, `2f64`, `1.5e3`)?
fn is_float_literal(token: &str) -> bool {
    let t = token
        .trim_start_matches('-')
        .trim_end_matches("f64")
        .trim_end_matches("f32");
    if t.is_empty() || !t.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let has_dot = t.contains('.');
    let has_exp = t.contains(['e', 'E'])
        && t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '-' | '+' | '_'));
    let all_numeric = t
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '-' | '+' | '_'));
    // An integer literal like `61` is not a float; a suffixed `2f64` is.
    (has_dot || has_exp || token.ends_with("f64") || token.ends_with("f32")) && all_numeric
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::prepare;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(path, &prepare(src))
    }

    #[test]
    fn unwrap_flagged_in_lib_not_in_tests() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let d = diags("crates/lik/src/a.rs", src);
        let unwraps: Vec<_> = d.iter().filter(|d| d.rule == RuleId::RobUnwrap).collect();
        assert_eq!(unwraps.len(), 1);
        assert_eq!(unwraps[0].line, 1);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let d = diags("crates/bio/src/a.rs", "fn f() { x.unwrap_or(false); }\n");
        assert!(d.iter().all(|d| d.rule != RuleId::RobUnwrap));
    }

    #[test]
    fn waiver_suppresses_with_reason_only() {
        let src = "fn f() { x.unwrap(); } // check: allow(rob-unwrap) index proven in bounds\n";
        assert!(diags("crates/lik/src/a.rs", src).is_empty());
        let bare = "fn f() { x.unwrap(); } // check: allow(rob-unwrap)\n";
        let d = diags("crates/lik/src/a.rs", bare);
        assert!(
            d.iter().any(|d| d.what.contains("no reason")),
            "reasonless waiver must be rejected: {d:?}"
        );
        assert!(d.iter().any(|d| d.what.contains("`.unwrap`")));
    }

    #[test]
    fn waiver_on_line_above() {
        let src = "// check: allow(rob-unwrap) guarded by the postorder invariant\nfn f() { x.unwrap(); }\n";
        assert!(diags("crates/lik/src/a.rs", src).is_empty());
    }

    #[test]
    fn unknown_waiver_rule_is_flagged() {
        let src = "fn f() {} // check: allow(rob-unwrp) typo\n";
        let d = diags("crates/lik/src/a.rs", src);
        assert!(d.iter().any(|d| d.what.contains("unknown rule")));
    }

    #[test]
    fn hash_iter_scoped_to_output_paths() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(diags("crates/batch/src/aggregate.rs", src).len(), 1);
        assert!(diags("crates/bio/src/patterns.rs", src).is_empty());
    }

    #[test]
    fn float_accum_scoped_and_blessed() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum() }\n";
        assert_eq!(diags("crates/lik/src/x.rs", src).len(), 1);
        assert!(diags("crates/linalg/src/vecops.rs", src).is_empty());
        assert!(diags("crates/bio/src/x.rs", src).is_empty());
        let plus = "fn g() { acc += x * y; }\n";
        assert_eq!(diags("crates/linalg/src/ql.rs", plus).len(), 1);
        let counter = "fn h() { n += 1; }\n";
        assert!(diags("crates/linalg/src/ql.rs", counter).is_empty());
        // The dispatched microkernels are accumulation kernels too.
        assert!(diags("crates/linalg/src/simd/avx2.rs", src).is_empty());
        assert!(diags("crates/linalg/src/simd/mod.rs", src).is_empty());
    }

    #[test]
    fn float_cmp_needs_float_literal() {
        assert_eq!(
            diags(
                "crates/model/src/a.rs",
                "if factor != 1.0 { q.scale(factor); }\n"
            )
            .len(),
            1
        );
        assert!(diags("crates/model/src/a.rs", "if n != 1 { work(); }\n").is_empty());
        assert!(diags(
            "crates/model/src/a.rs",
            "if a.to_bits() == b.to_bits() {}\n"
        )
        .is_empty());
        assert_eq!(diags("crates/model/src/a.rs", "if x == 0.0 {}\n").len(), 1);
        assert!(diags("crates/model/src/a.rs", "if x <= 0.0 {}\n").is_empty());
    }

    #[test]
    fn wallclock_scoped_to_non_observability_crates() {
        let src = "fn f() { let t = Instant::now(); work(t); }\n";
        assert_eq!(diags("crates/lik/src/par.rs", src).len(), 1);
        assert_eq!(diags("crates/opt/src/bfgs.rs", src).len(), 1);
        // The observability crates' whole job is wall-clock time.
        assert!(diags("crates/obs/src/timing.rs", src).is_empty());
        assert!(diags("crates/trace/src/lib.rs", src).is_empty());
        assert!(diags("crates/bench/src/bin/tool.rs", src).is_empty());
        let sys = "fn g() { let t = SystemTime::now(); stamp(t); }\n";
        assert_eq!(diags("crates/batch/src/journal.rs", sys).len(), 1);
        // Waivers work like any other rule.
        let waived = "// check: allow(det-wallclock) feeds the report footer only\n\
                      fn f() { let t = Instant::now(); work(t); }\n";
        assert!(diags("crates/lik/src/par.rs", waived).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { go() } }\n";
        assert_eq!(diags("crates/linalg/src/simd.rs", bad).len(), 1);
        let good = "// SAFETY: lane count checked above\nfn f() { unsafe { go() } }\n";
        assert!(diags("crates/linalg/src/simd.rs", good).is_empty());
    }

    #[test]
    fn binaries_exempt_from_unwrap() {
        let src = "fn main() { run().unwrap(); }\n";
        assert!(diags("crates/cli/src/main.rs", src).is_empty());
        assert!(diags("crates/bench/src/bin/tool.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "fn f() { log(\"call .unwrap() only in tests\"); } // .unwrap() is banned\n";
        assert!(diags("crates/lik/src/a.rs", src).is_empty());
    }
}
