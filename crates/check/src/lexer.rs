//! Source preparation: blank out comments and literal contents, track
//! `#[cfg(test)]` regions.
//!
//! The rule matchers work on *blanked* lines — comments replaced by
//! spaces and string/char literal contents replaced by spaces (the
//! delimiting quotes survive) — so `// no unwrap() here` or
//! `"HashMap"` in a message can never trip a lint. Waiver comments are
//! read from the *raw* lines, because waivers live in comments.

/// One source line, prepared for rule matching.
#[derive(Debug, Clone)]
pub struct PreparedLine {
    /// The line with comments and literal contents blanked to spaces.
    pub code: String,
    /// The original line, used for waiver-comment detection and excerpts.
    pub raw: String,
    /// True when the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// Lexer mode while walking the file character by character.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the nesting depth.
    BlockComment(u32),
    Str,
    /// Raw string `r##"…"##`; the payload is the number of `#`s.
    RawStr(u32),
    Char,
}

/// Blank comments and literal contents, preserving line structure.
fn blank(source: &str) -> String {
    blank_with(source, false)
}

/// Blank comments, preserving line structure. With `keep_literals` the
/// string/char literal *contents* survive (the tokenizer needs them to
/// read `cfg(feature = "...")` values); without it they are blanked to
/// spaces exactly as [`prepare`] has always done.
pub fn blank_with(source: &str, keep_literals: bool) -> String {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut mode = Mode::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    mode = Mode::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    mode = Mode::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    mode = Mode::Str;
                    out.push('"');
                    i += 1;
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    let (hashes, consumed) = raw_string_open(&chars, i);
                    mode = Mode::RawStr(hashes);
                    if keep_literals {
                        for k in 0..consumed {
                            out.push(chars[i + k]);
                        }
                    } else {
                        for _ in 1..consumed {
                            out.push(' ');
                        }
                        out.push('"');
                    }
                    i += consumed;
                }
                '\'' => {
                    // Distinguish a char literal from a lifetime: a char
                    // literal closes with `'` within a few characters; a
                    // lifetime (`'a`, `'static`) never closes.
                    if is_char_literal(&chars, i) {
                        mode = Mode::Char;
                        out.push('\'');
                        i += 1;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            Mode::LineComment => {
                if c == '\n' {
                    mode = Mode::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment(depth - 1);
                    }
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            Mode::Str => match c {
                '\\' => {
                    // An escape consumes the backslash and the next char.
                    // A string-continuation escape (`\` at end of line)
                    // consumes a *newline*: blank the backslash but keep
                    // the newline, or every later line number desyncs.
                    out.push(if keep_literals { '\\' } else { ' ' });
                    if let Some(e) = next {
                        out.push(if e == '\n' {
                            '\n'
                        } else if keep_literals {
                            e
                        } else {
                            ' '
                        });
                    }
                    i += 2;
                }
                '"' => {
                    mode = Mode::Code;
                    out.push('"');
                    i += 1;
                }
                '\n' => {
                    out.push('\n');
                    i += 1;
                }
                _ => {
                    out.push(if keep_literals { c } else { ' ' });
                    i += 1;
                }
            },
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    mode = Mode::Code;
                    out.push('"');
                    for k in 0..hashes as usize {
                        out.push(if keep_literals { chars[i + 1 + k] } else { ' ' });
                    }
                    i += 1 + hashes as usize;
                } else if keep_literals {
                    out.push(c);
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            Mode::Char => match c {
                '\\' => {
                    // Same newline preservation as in `Mode::Str`: an
                    // escape must never swallow a line break.
                    out.push(if keep_literals { '\\' } else { ' ' });
                    if let Some(e) = next {
                        out.push(if e == '\n' {
                            '\n'
                        } else if keep_literals {
                            e
                        } else {
                            ' '
                        });
                    }
                    i += 2;
                }
                '\'' => {
                    mode = Mode::Code;
                    out.push('\'');
                    i += 1;
                }
                _ => {
                    out.push(if keep_literals { c } else { ' ' });
                    i += 1;
                }
            },
        }
    }
    out
}

/// Does a raw (byte) string literal start at `i`? Accepts `r"`, `r#"`,
/// `br"`, `br#"` with any number of `#`s.
pub(crate) fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    // Identifiers like `raw` or `br` must not match: the char before `i`
    // must not be part of an identifier.
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Length of the raw-string opener at `i` and its `#` count.
pub(crate) fn raw_string_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j + 1 - i) // including the opening quote
}

/// Does the `"` at `i` close a raw string with `hashes` trailing `#`s?
pub(crate) fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Is the `'` at `i` a char literal (vs a lifetime)?
pub(crate) fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,                         // '\n', '\''
        Some(_) => chars.get(i + 2) == Some(&'\''), // 'x'
        None => false,
    }
}

/// Prepare a source file: blank literals/comments and mark test regions.
pub fn prepare(source: &str) -> Vec<PreparedLine> {
    let blanked = blank(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let code_lines: Vec<&str> = blanked.lines().collect();

    let mut out = Vec::with_capacity(raw_lines.len());
    let mut depth: i64 = 0;
    // Brace depths at which `#[cfg(test)]` regions opened.
    let mut test_regions: Vec<i64> = Vec::new();
    // A `#[cfg(test)]` attribute seen, waiting for the item's `{`.
    let mut pending_cfg_test = false;

    for (idx, code) in code_lines.iter().enumerate() {
        let mut in_test = !test_regions.is_empty();
        if code.contains("cfg(test)") || code.contains("cfg(all(test") {
            pending_cfg_test = true;
            in_test = true; // the attribute line itself is test-only
        }
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_cfg_test {
                        test_regions.push(depth);
                        pending_cfg_test = false;
                        in_test = true;
                    }
                }
                '}' => {
                    if let Some(&top) = test_regions.last() {
                        if depth == top {
                            test_regions.pop();
                        }
                    }
                    depth -= 1;
                }
                // `#[cfg(test)] use …;` — a braceless item ends the
                // attribute's scope at the `;`.
                ';' if pending_cfg_test && !code.contains('{') => {
                    pending_cfg_test = false;
                }
                _ => {}
            }
        }
        out.push(PreparedLine {
            code: (*code).to_string(),
            raw: raw_lines.get(idx).copied().unwrap_or("").to_string(),
            in_test,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let lines = prepare("let x = \"unwrap()\"; // unwrap()\nlet y = 1;\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].raw.contains("// unwrap()"));
        assert_eq!(lines[1].code, "let y = 1;");
    }

    #[test]
    fn block_comments_nest() {
        let lines = prepare("/* outer /* inner */ still */ let a = 1;");
        assert!(lines[0].code.contains("let a = 1;"));
        assert!(!lines[0].code.contains("outer"));
        assert!(!lines[0].code.contains("still"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lines = prepare("let s = r#\"panic!(\"x\")\"#; let t = 2;");
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].code.contains("let t = 2;"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let lines = prepare("fn f<'a>(x: &'a str) -> &'a str { x } // ok\nlet c = 'x';\n");
        assert!(lines[0].code.contains("fn f<'a>"));
        assert!(!lines[0].code.contains("ok"));
        assert!(lines[1].code.contains("let c = '"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let lines = prepare(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test, "attribute line");
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test, "closing brace");
        assert!(!lines[5].in_test, "code after the test module");
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn real() { body(); }\n";
        let lines = prepare(src);
        assert!(!lines[2].in_test, "fn after a cfg(test) use must be live");
    }

    #[test]
    fn string_continuation_keeps_line_count() {
        // `\` at end of line is a string-continuation escape; the lexer
        // used to swallow the newline, desyncing every later line number.
        let src = "let s = \"a\\\nb\";\nlet x = y.unwrap();\n";
        let lines = prepare(src);
        assert_eq!(lines.len(), 3, "continuation must not eat the newline");
        assert!(lines[2].code.contains("unwrap"), "line 3 stays line 3");
        // Same bug class in char position (invalid Rust, but the lexer
        // must stay line-stable on anything it is handed).
        let ch = "let c = '\\\n';\nlet t = 1;\n";
        assert_eq!(prepare(ch).len(), 3);
    }

    #[test]
    fn multiline_raw_strings_keep_line_count() {
        let src =
            "let s = r#\"one\ntwo \"quoted\" //not-a-comment\nthree\"#;\nlet k = m.unwrap();\n";
        let lines = prepare(src);
        assert_eq!(lines.len(), 4);
        assert!(!lines[1].code.contains("quoted"));
        assert!(
            lines[3].code.contains("unwrap"),
            "post-raw-string line intact"
        );
        // A `"` with too few `#`s does not close; `"#` inside `r##"…"##`
        // is content.
        let tricky = "let s = r##\"a\"# still\nin\"##; let z = 9;\n";
        let t = prepare(tricky);
        assert_eq!(t.len(), 2);
        assert!(!t[0].code.contains("still"));
        assert!(t[1].code.contains("let z = 9;"));
    }

    #[test]
    fn nested_block_comments_keep_line_count() {
        let src = "/* a\n/* b */\nstill comment */\nlet w = v.unwrap();\n";
        let lines = prepare(src);
        assert_eq!(lines.len(), 4);
        assert!(!lines[2].code.contains("still"));
        assert!(lines[3].code.contains("unwrap"));
        // Overlapping open/close runs: `/*/**/*/` is two balanced levels.
        let overlap = "/*/**/*/\nlet p = n.unwrap();\n";
        let o = prepare(overlap);
        assert_eq!(o.len(), 2);
        assert!(o[0].code.trim().is_empty());
        assert!(o[1].code.contains("unwrap"));
    }

    #[test]
    fn keep_literals_preserves_contents_and_blanks_comments() {
        let out = blank_with("let f = \"sanitize\"; // gone\nlet r = r#\"raw\"#;\n", true);
        assert!(out.contains("\"sanitize\""));
        assert!(out.contains("r#\"raw\"#"));
        assert!(!out.contains("gone"));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let lines = prepare("let s = \"a\\\"unwrap()\\\"b\"; let u = 3;");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("let u = 3;"));
    }
}
