//! The interprocedural rules: panic-free-hot-path, atomic-ordering,
//! alloc-in-hot-loop (stale-waiver is assembled by the caller from the
//! shared waiver-usage state).
//!
//! Hot entry points are declared in source with a `check: hot` comment
//! on or above the `fn` declaration. Reachability runs over the
//! conservative call graph ([`crate::callgraph`]); waivers interact per
//! the documented semantics: a `panic-free-hot-path` waiver on a call
//! line cuts that edge, on a site line suppresses that site, and in the
//! comment block above a fn declaration absolves the fn's own body
//! sites.

use std::collections::BTreeMap;

use crate::ast::Expr;
use crate::callgraph;
use crate::lexer::PreparedLine;
use crate::resolve::{self, ParsedFile, Workspace};
use crate::rules::{Diagnostic, FileWaivers, RuleId};

/// One file ready for analysis: prepared lines (for waivers and hot
/// markers) plus its AST.
pub struct AnalyzedFile {
    pub path: String,
    pub lines: Vec<PreparedLine>,
    pub ast: crate::ast::File,
}

/// Run the three graph/AST rules over the workspace. `waivers` carries
/// per-file usage state shared with the line rules; the caller derives
/// stale-waiver findings from it afterwards.
pub fn run(
    files: &[AnalyzedFile],
    crate_names: &BTreeMap<String, String>,
    waivers: &mut BTreeMap<String, FileWaivers>,
) -> Vec<Diagnostic> {
    let parsed: Vec<ParsedFile> = files
        .iter()
        .map(|f| ParsedFile {
            path: f.path.clone(),
            ast: f.ast.clone(),
        })
        .collect();
    let ws = resolve::build(&parsed, crate_names);
    let lines_of: BTreeMap<&str, &[PreparedLine]> = files
        .iter()
        .map(|f| (f.path.as_str(), f.lines.as_slice()))
        .collect();
    for f in files {
        waivers
            .entry(f.path.clone())
            .or_insert_with(|| FileWaivers::parse(&f.lines));
    }

    let graph = callgraph::build(&ws);
    let roots: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.in_scope()
                && f.has_body
                && lines_of
                    .get(f.file.as_str())
                    .is_some_and(|lines| hot_marked(lines, f.line))
        })
        .map(|(i, _)| i)
        .collect();

    // Reachability with waiver-cut edges. A panic-free-hot-path waiver
    // on a call site's line severs that edge (and counts as used).
    let reach = callgraph::reachable(&ws, &graph, &roots, |from, line| {
        let file = ws.fns[from].file.clone();
        waivers
            .get_mut(&file)
            .is_some_and(|w| w.waive(line, RuleId::PanicFreeHotPath))
    });

    let mut out = Vec::new();
    out.extend(panic_free_rule(&ws, &reach, &lines_of, waivers));
    out.extend(alloc_rule(&ws, &reach, waivers));
    out.extend(atomic_rule(&ws, waivers));
    out
}

// ------------------------------------------------------------ hot marker

/// Is the fn declared at `decl_line` (1-based) marked `check: hot` —
/// on the declaration line or in the comment/attribute block above?
pub fn hot_marked(lines: &[PreparedLine], decl_line: usize) -> bool {
    if decl_line == 0 || decl_line > lines.len() {
        return false;
    }
    if has_hot(&lines[decl_line - 1].raw) {
        return true;
    }
    let mut l = decl_line - 1;
    while l >= 1 {
        let raw = lines[l - 1].raw.trim_start();
        if !(raw.starts_with("//") || raw.starts_with('#')) {
            break;
        }
        if has_hot(raw) {
            return true;
        }
        l -= 1;
    }
    false
}

fn has_hot(raw: &str) -> bool {
    const TAG: &str = "check: hot";
    // The marker must START a comment (`// check: hot …`) so prose that
    // merely mentions the syntax mid-sentence never declares a hot fn.
    let mut rest = raw;
    while let Some(at) = rest.find("//") {
        let after = rest[at..].trim_start_matches(['/', '!']).trim_start();
        if let Some(tail) = after.strip_prefix(TAG) {
            if tail
                .chars()
                .next()
                .is_none_or(|c| !c.is_ascii_alphanumeric())
            {
                return true;
            }
        }
        rest = &rest[at + 2..];
    }
    false
}

// ------------------------------------------------- panic-free-hot-path

const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

fn panic_free_rule(
    ws: &Workspace,
    reach: &[Option<usize>],
    lines_of: &BTreeMap<&str, &[PreparedLine]>,
    waivers: &mut BTreeMap<String, FileWaivers>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        let Some(root) = reach[i] else { continue };
        if !RuleId::PanicFreeHotPath.applies_to(&f.file) {
            continue;
        }
        let Some(fw) = waivers.get_mut(&f.file) else {
            continue;
        };
        // A fn-level waiver in the comment block above the declaration
        // absolves this fn's own body sites (traversal already
        // continued through it).
        if let Some(lines) = lines_of.get(f.file.as_str()) {
            if fw.waive_block_above(lines, f.line, RuleId::PanicFreeHotPath) {
                continue;
            }
        }
        let mut sites = Vec::new();
        panic_sites(&f.body, &mut sites);
        let entry = &ws.fns[root].qual;
        for (line, what) in sites {
            if fw.waive(line, RuleId::PanicFreeHotPath) {
                continue;
            }
            out.push(Diagnostic {
                rule: RuleId::PanicFreeHotPath,
                path: f.file.clone(),
                line,
                what: format!("{what} reachable from hot entry {entry}"),
            });
        }
    }
    out
}

fn panic_sites(exprs: &[Expr], out: &mut Vec<(usize, String)>) {
    for e in exprs {
        match e {
            Expr::Gated { cfg, body } => {
                if cfg.in_scope() {
                    panic_sites(body, out);
                }
            }
            Expr::MacroCall { name, line, args } => {
                if PANIC_MACROS.contains(&name.as_str()) {
                    out.push((*line, format!("`{name}!`")));
                } else if !name.starts_with("debug_assert") {
                    // debug_assert* is compiled out of release builds —
                    // its argument expressions never run on the hot path.
                    panic_sites(args, out);
                }
            }
            Expr::MethodCall { name, line, args } => {
                if name == "unwrap" || name == "expect" {
                    out.push((*line, format!("`.{name}()`")));
                }
                panic_sites(args, out);
            }
            Expr::Index { line, children } => {
                out.push((*line, "`[]` indexing".to_string()));
                panic_sites(children, out);
            }
            _ => panic_sites(e.children(), out),
        }
    }
}

// ---------------------------------------------------- alloc-in-hot-loop

const ALLOC_METHODS: [&str; 6] = [
    "push",
    "clone",
    "collect",
    "to_vec",
    "to_string",
    "to_owned",
];
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];
const ALLOC_CALLS: [(&str, &str); 6] = [
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "with_capacity"),
];

fn alloc_rule(
    ws: &Workspace,
    reach: &[Option<usize>],
    waivers: &mut BTreeMap<String, FileWaivers>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if reach[i].is_none() || !RuleId::AllocInHotLoop.applies_to(&f.file) {
            continue;
        }
        let Some(fw) = waivers.get_mut(&f.file) else {
            continue;
        };
        let mut sites = Vec::new();
        alloc_sites(&f.body, false, &mut sites);
        for (line, what) in sites {
            if fw.waive(line, RuleId::AllocInHotLoop) {
                continue;
            }
            out.push(Diagnostic {
                rule: RuleId::AllocInHotLoop,
                path: f.file.clone(),
                line,
                what: format!("{what} in a loop of hot-path fn {}", f.qual),
            });
        }
    }
    out
}

fn alloc_sites(exprs: &[Expr], in_loop: bool, out: &mut Vec<(usize, String)>) {
    for e in exprs {
        match e {
            Expr::Gated { cfg, body } => {
                if cfg.in_scope() {
                    alloc_sites(body, in_loop, out);
                }
            }
            Expr::Loop { body, .. } => alloc_sites(body, true, out),
            Expr::MacroCall { name, line, args } => {
                if in_loop && ALLOC_MACROS.contains(&name.as_str()) {
                    out.push((*line, format!("`{name}!` allocation")));
                }
                alloc_sites(args, in_loop, out);
            }
            Expr::MethodCall { name, line, args } => {
                if in_loop && ALLOC_METHODS.contains(&name.as_str()) {
                    out.push((*line, format!("`.{name}()` allocation")));
                }
                alloc_sites(args, in_loop, out);
            }
            Expr::Call { path, line, args } => {
                if in_loop && path.len() >= 2 {
                    let key = (path[path.len() - 2].as_str(), path[path.len() - 1].as_str());
                    if ALLOC_CALLS.contains(&key) {
                        out.push((*line, format!("`{}::{}` allocation", key.0, key.1)));
                    }
                }
                alloc_sites(args, in_loop, out);
            }
            _ => alloc_sites(e.children(), in_loop, out),
        }
    }
}

// ------------------------------------------------------ atomic-ordering

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

#[derive(Debug)]
struct AtomicSite {
    line: usize,
    ord: &'static str,
    /// Enclosing call/method name (`store`, `load`, `fetch_add`, …).
    ctx: Option<String>,
}

fn atomic_rule(ws: &Workspace, waivers: &mut BTreeMap<String, FileWaivers>) -> Vec<Diagnostic> {
    // Group sites per file: the pairing check is per-file.
    let mut by_file: BTreeMap<&str, Vec<AtomicSite>> = BTreeMap::new();
    for f in &ws.fns {
        if !f.in_scope() || !RuleId::AtomicOrdering.applies_to(&f.file) {
            continue;
        }
        let sites = by_file.entry(f.file.as_str()).or_default();
        atomic_sites(&f.body, None, sites);
    }
    let mut out = Vec::new();
    for (file, sites) in by_file {
        if sites.is_empty() {
            continue;
        }
        let Some(fw) = waivers.get_mut(file) else {
            continue;
        };
        let relaxed_ok = file.starts_with("crates/obs/") || file.starts_with("crates/trace/");
        let mut release_side: Option<usize> = None;
        let mut acquire_side = false;
        let mut release_seen = false;
        let mut acquire_line: Option<usize> = None;
        for s in &sites {
            let ctx = s.ctx.as_deref().unwrap_or("");
            let rmw =
                ctx.starts_with("fetch_") || ctx.starts_with("compare_exchange") || ctx == "swap";
            let is_store = ctx == "store" || rmw;
            let is_load = ctx == "load" || rmw;
            match s.ord {
                "Release" | "AcqRel" if is_store => {
                    release_seen = true;
                    release_side.get_or_insert(s.line);
                }
                _ => {}
            }
            if matches!(s.ord, "Acquire" | "AcqRel") && is_load {
                acquire_side = true;
                acquire_line.get_or_insert(s.line);
            }
            let finding = match s.ord {
                "Relaxed" if !relaxed_ok => {
                    Some("`Ordering::Relaxed` outside the obs/trace counter crates".to_string())
                }
                "SeqCst" => Some("`Ordering::SeqCst` (name the protocol or weaken)".to_string()),
                _ => None,
            };
            if let Some(what) = finding {
                if fw.waive(s.line, RuleId::AtomicOrdering) {
                    continue;
                }
                out.push(Diagnostic {
                    rule: RuleId::AtomicOrdering,
                    path: file.to_string(),
                    line: s.line,
                    what,
                });
            }
        }
        // One-sided hand-off: Release stores with no Acquire load in the
        // same file (or the reverse) synchronize nothing.
        if release_seen && !acquire_side {
            let line = release_side.unwrap_or(1);
            if !fw.waive(line, RuleId::AtomicOrdering) {
                out.push(Diagnostic {
                    rule: RuleId::AtomicOrdering,
                    path: file.to_string(),
                    line,
                    what: "Release store with no Acquire load in this file".to_string(),
                });
            }
        }
        if acquire_side && !release_seen {
            let line = acquire_line.unwrap_or(1);
            if !fw.waive(line, RuleId::AtomicOrdering) {
                out.push(Diagnostic {
                    rule: RuleId::AtomicOrdering,
                    path: file.to_string(),
                    line,
                    what: "Acquire load with no Release store in this file".to_string(),
                });
            }
        }
    }
    out
}

fn atomic_sites(exprs: &[Expr], ctx: Option<&str>, out: &mut Vec<AtomicSite>) {
    for e in exprs {
        match e {
            Expr::Gated { cfg, body } => {
                if cfg.in_scope() {
                    atomic_sites(body, ctx, out);
                }
            }
            Expr::PathRef { path, line } => {
                if path.len() >= 2 && path[path.len() - 2] == "Ordering" {
                    if let Some(ord) = ORDERINGS
                        .iter()
                        .find(|o| **o == path[path.len() - 1].as_str())
                    {
                        out.push(AtomicSite {
                            line: *line,
                            ord,
                            ctx: ctx.map(str::to_string),
                        });
                    }
                }
            }
            Expr::MethodCall { name, args, .. } => atomic_sites(args, Some(name), out),
            Expr::Call { path, args, .. } => {
                atomic_sites(args, path.last().map(String::as_str), out)
            }
            _ => atomic_sites(e.children(), ctx, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::prepare;
    use crate::parser::parse_file;

    fn analyze(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let afs: Vec<AnalyzedFile> = files
            .iter()
            .map(|(p, s)| AnalyzedFile {
                path: p.to_string(),
                lines: prepare(s),
                ast: parse_file(s).expect("parse"),
            })
            .collect();
        let mut waivers = BTreeMap::new();
        let mut out = run(&afs, &BTreeMap::new(), &mut waivers);
        out.sort_by_key(|d| (d.path.clone(), d.line, d.rule));
        out
    }

    #[test]
    fn panic_reachable_from_hot_entry() {
        let d = analyze(&[(
            "crates/a/src/lib.rs",
            "// check: hot\npub fn kernel() { helper(); }\nfn helper(x: Option<u32>) { x.unwrap(); }\nfn cold() { panic!(\"no\"); }",
        )]);
        let panics: Vec<_> = d
            .iter()
            .filter(|d| d.rule == RuleId::PanicFreeHotPath)
            .collect();
        assert_eq!(panics.len(), 1, "{panics:?}");
        assert_eq!(panics[0].line, 3);
        assert!(panics[0].what.contains("slim_a::kernel"));
    }

    #[test]
    fn edge_waiver_cuts_propagation() {
        let d = analyze(&[(
            "crates/a/src/lib.rs",
            "// check: hot\npub fn kernel() {\n    // check: allow(panic-free-hot-path) error path, never taken per postorder invariant\n    helper();\n}\nfn helper(x: Option<u32>) { x.unwrap(); }",
        )]);
        assert!(
            d.iter().all(|d| d.rule != RuleId::PanicFreeHotPath),
            "{d:?}"
        );
    }

    #[test]
    fn fn_level_waiver_absolves_body() {
        let d = analyze(&[(
            "crates/a/src/lib.rs",
            "// check: hot\npub fn kernel(xs: &[f64]) -> f64 { pick(xs) }\n// check: allow(panic-free-hot-path) index bounded by caller contract\nfn pick(xs: &[f64]) -> f64 { xs[0] }",
        )]);
        assert!(
            d.iter().all(|d| d.rule != RuleId::PanicFreeHotPath),
            "{d:?}"
        );
    }

    #[test]
    fn alloc_in_hot_loop_flagged() {
        let d = analyze(&[(
            "crates/a/src/lib.rs",
            "// check: hot\npub fn kernel(n: usize) { let mut v = Vec::new(); for i in 0..n { v.push(i); } }",
        )]);
        let allocs: Vec<_> = d
            .iter()
            .filter(|d| d.rule == RuleId::AllocInHotLoop)
            .collect();
        // Vec::new is outside the loop (fine); push is inside (finding).
        assert_eq!(allocs.len(), 1, "{allocs:?}");
        assert!(allocs[0].what.contains("push"));
    }

    #[test]
    fn relaxed_ok_in_trace_not_elsewhere() {
        let src =
            "pub fn bump(c: &std::sync::atomic::AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        let d = analyze(&[("crates/trace/src/lib.rs", src)]);
        assert!(d.iter().all(|d| d.rule != RuleId::AtomicOrdering), "{d:?}");
        let d = analyze(&[("crates/batch/src/lib.rs", src)]);
        assert!(
            d.iter()
                .any(|d| d.rule == RuleId::AtomicOrdering && d.what.contains("Relaxed")),
            "{d:?}"
        );
    }

    #[test]
    fn seqcst_needs_waiver_and_pairing_checked() {
        let d = analyze(&[(
            "crates/a/src/lib.rs",
            "pub fn f(x: &std::sync::atomic::AtomicBool) { x.store(true, Ordering::SeqCst); }",
        )]);
        assert!(d
            .iter()
            .any(|d| d.rule == RuleId::AtomicOrdering && d.what.contains("SeqCst")));
        // Release store with a matching Acquire load: no pairing finding.
        let paired = analyze(&[(
            "crates/a/src/lib.rs",
            "pub fn set(x: &AtomicBool) { x.store(true, Ordering::Release); }\n\
             pub fn get(x: &AtomicBool) -> bool { x.load(Ordering::Acquire) }",
        )]);
        assert!(
            paired.iter().all(|d| d.rule != RuleId::AtomicOrdering),
            "{paired:?}"
        );
        // One-sided Release: pairing finding.
        let lone = analyze(&[(
            "crates/a/src/lib.rs",
            "pub fn set(x: &AtomicBool) { x.store(true, Ordering::Release); }",
        )]);
        assert!(
            lone.iter().any(|d| d.what.contains("no Acquire load")),
            "{lone:?}"
        );
    }

    #[test]
    fn hot_marker_detection() {
        let lines = prepare("// check: hot pruning inner loop\n#[inline]\npub fn f() {}\n");
        assert!(hot_marked(&lines, 3));
        let lines = prepare("// check: hotel\npub fn f() {}\n");
        assert!(!hot_marked(&lines, 2));
        let lines = prepare("pub fn f() {} // check: hot\n");
        assert!(hot_marked(&lines, 1));
    }
}
