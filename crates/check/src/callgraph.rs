//! Conservative workspace call graph and hot-path reachability.
//!
//! Edges over-approximate: a method call `.name(…)` edges to *every*
//! workspace method named `name` (so trait-object and generic dispatch
//! can never escape the analysis), closure bodies belong to the
//! enclosing function, and a bare path that happens to name a function
//! counts as a potential call (fn-as-value). Code under `cfg(test)` /
//! `feature = "sanitize"` gates is out of scope — the panic-free
//! contract covers the production build.

use std::collections::VecDeque;

use crate::ast::Expr;
use crate::resolve::Workspace;

/// One call site inside a function.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based source line of the call.
    pub line: usize,
    /// Candidate callee indices into `Workspace::fns`.
    pub targets: Vec<usize>,
}

/// Adjacency: `calls[f]` are the call sites inside `fns[f]`.
#[derive(Debug, Default)]
pub struct Graph {
    pub calls: Vec<Vec<CallSite>>,
}

/// Build the graph. Out-of-scope functions get no outgoing edges (they
/// can still be *targets*, but reachability skips them).
pub fn build(ws: &Workspace) -> Graph {
    let mut calls = Vec::with_capacity(ws.fns.len());
    for f in &ws.fns {
        let mut sites = Vec::new();
        if f.in_scope() {
            collect_calls(ws, f, &f.body, &mut sites);
        }
        calls.push(sites);
    }
    Graph { calls }
}

fn collect_calls(
    ws: &Workspace,
    from: &crate::resolve::FnDef,
    exprs: &[Expr],
    out: &mut Vec<CallSite>,
) {
    for e in exprs {
        match e {
            Expr::Gated { cfg, body } => {
                if cfg.in_scope() {
                    collect_calls(ws, from, body, out);
                }
                continue;
            }
            Expr::Call { path, line, .. } => {
                let targets = ws.resolve_call(from, path);
                if !targets.is_empty() {
                    out.push(CallSite {
                        line: *line,
                        targets,
                    });
                }
            }
            Expr::MethodCall { name, line, .. } => {
                let targets = ws.resolve_method(name).to_vec();
                if !targets.is_empty() {
                    out.push(CallSite {
                        line: *line,
                        targets,
                    });
                }
            }
            Expr::PathRef { path, line } => {
                // A function mentioned as a value (passed to a combinator,
                // stored in a table) may be called anywhere: conservative
                // edge from the mention site.
                let targets = ws.resolve_call(from, path);
                if !targets.is_empty() {
                    out.push(CallSite {
                        line: *line,
                        targets,
                    });
                }
            }
            _ => {}
        }
        collect_calls(ws, from, e.children(), out);
    }
}

/// Breadth-first reachability from `roots`. Returns, per function, the
/// root that first reached it (roots map to themselves); `None` means
/// unreachable. `cut_edge(from_idx, site_line)` lets the caller sever
/// waived call edges (and record the waiver as used).
pub fn reachable(
    ws: &Workspace,
    graph: &Graph,
    roots: &[usize],
    mut cut_edge: impl FnMut(usize, usize) -> bool,
) -> Vec<Option<usize>> {
    let mut entry: Vec<Option<usize>> = vec![None; ws.fns.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in roots {
        if entry[r].is_none() {
            entry[r] = Some(r);
            queue.push_back(r);
        }
    }
    while let Some(f) = queue.pop_front() {
        let Some(root) = entry[f] else { continue };
        for site in &graph.calls[f] {
            if cut_edge(f, site.line) {
                continue;
            }
            for &t in &site.targets {
                // Out-of-scope targets terminate the walk: their bodies
                // are not part of the production build.
                if entry[t].is_none() && ws.fns[t].in_scope() {
                    entry[t] = Some(root);
                    queue.push_back(t);
                }
            }
        }
    }
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::resolve::{build as build_ws, ParsedFile};
    use std::collections::BTreeMap;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(p, s)| ParsedFile {
                path: p.to_string(),
                ast: parse_file(s).expect("parse"),
            })
            .collect();
        build_ws(&parsed, &BTreeMap::new())
    }

    fn idx(ws: &Workspace, qual: &str) -> usize {
        ws.fns
            .iter()
            .position(|f| f.qual == qual)
            .unwrap_or_else(|| panic!("no {qual}"))
    }

    #[test]
    fn direct_and_transitive_reachability() {
        let w = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub fn hot() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}",
        )]);
        let g = build(&w);
        let reach = reachable(&w, &g, &[idx(&w, "slim_a::hot")], |_, _| false);
        assert!(reach[idx(&w, "slim_a::leaf")].is_some());
        assert!(reach[idx(&w, "slim_a::island")].is_none());
    }

    /// Trait-object dispatch: `.run()` through `dyn Task` must reach
    /// every workspace impl of `run` — the documented
    /// over-approximation.
    #[test]
    fn trait_object_calls_reach_all_impls() {
        let w = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub trait Task { fn run(&self); }\n\
             pub struct A;\nimpl Task for A { fn run(&self) { a_work(); } }\n\
             pub struct B;\nimpl Task for B { fn run(&self) { b_work(); } }\n\
             fn a_work() {}\nfn b_work() {}\n\
             pub fn hot(t: &dyn Task) { t.run(); }",
        )]);
        let g = build(&w);
        let reach = reachable(&w, &g, &[idx(&w, "slim_a::hot")], |_, _| false);
        assert!(reach[idx(&w, "slim_a::a_work")].is_some());
        assert!(reach[idx(&w, "slim_a::b_work")].is_some());
    }

    /// Closure bodies belong to the enclosing fn: calls inside a
    /// closure passed to a combinator still produce edges from `hot`.
    #[test]
    fn closure_bodies_attributed_to_enclosing_fn() {
        let w = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub fn hot(xs: &[u32]) -> u32 { xs.iter().map(|x| helper(*x)).sum() }\n\
             fn helper(x: u32) -> u32 { deep(x) }\nfn deep(x: u32) -> u32 { x }",
        )]);
        let g = build(&w);
        let reach = reachable(&w, &g, &[idx(&w, "slim_a::hot")], |_, _| false);
        assert!(reach[idx(&w, "slim_a::helper")].is_some());
        assert!(reach[idx(&w, "slim_a::deep")].is_some());
    }

    /// Functions passed as values (`map(helper)`) are conservatively
    /// treated as called.
    #[test]
    fn fn_as_value_produces_an_edge() {
        let w = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub fn hot(xs: &[u32]) -> Vec<u32> { xs.iter().copied().map(helper).collect() }\n\
             fn helper(x: u32) -> u32 { x }",
        )]);
        let g = build(&w);
        let reach = reachable(&w, &g, &[idx(&w, "slim_a::hot")], |_, _| false);
        assert!(reach[idx(&w, "slim_a::helper")].is_some());
    }

    #[test]
    fn test_gated_calls_do_not_leak_into_scope() {
        let w = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub fn hot() { #[cfg(test)] test_only(); real(); }\n\
             fn test_only() {}\nfn real() {}\n\
             #[cfg(test)]\nmod tests { pub fn t() { crate::hot(); } }",
        )]);
        let g = build(&w);
        let reach = reachable(&w, &g, &[idx(&w, "slim_a::hot")], |_, _| false);
        assert!(reach[idx(&w, "slim_a::test_only")].is_none());
        assert!(reach[idx(&w, "slim_a::real")].is_some());
    }

    #[test]
    fn cut_edges_stop_propagation() {
        let w = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub fn hot() { waived_call(); }\nfn waived_call() { deep(); }\nfn deep() {}",
        )]);
        let g = build(&w);
        let hot = idx(&w, "slim_a::hot");
        let reach = reachable(&w, &g, &[hot], |from, _| from == hot);
        assert!(reach[idx(&w, "slim_a::waived_call")].is_none());
        assert!(reach[idx(&w, "slim_a::deep")].is_none());
    }
}
