//! The syntax tree the rules walk.
//!
//! This is deliberately not a full Rust AST: it keeps exactly the
//! structure the interprocedural rules need — items with their
//! `cfg`-gates, function bodies as nested expression trees with call
//! sites, loops, closures, indexing and macro invocations — and folds
//! everything else into generic [`Expr::Group`] nesting. Fidelity
//! trade-offs are documented in DESIGN.md ("deliberate
//! over-approximations").

/// Conditional-compilation gate on an item or statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cfg {
    /// No `#[cfg]`, or one that does not change analysis scope.
    None,
    /// Definitely compiled only under `cfg(test)` (`test` or
    /// `all(test, …)`). Out of scope for every hot-path rule.
    Test,
    /// Definitely compiled only with `feature = "sanitize"`. The
    /// panic-free contract covers *non*-sanitize builds, so these
    /// regions are out of scope (their entire job is to panic).
    Sanitize,
    /// Some other gate (`target_arch`, `any(…)`, `not(…)`). Stays in
    /// scope: the conservative direction for reachability.
    Other,
}

impl Cfg {
    /// Is code under this gate part of the non-test, non-sanitize build
    /// the hot-path rules reason about?
    pub fn in_scope(self) -> bool {
        !matches!(self, Cfg::Test | Cfg::Sanitize)
    }

    /// Combine a parent gate with a nested one (test/sanitize are
    /// sticky: once out of scope, always out of scope).
    pub fn and(self, inner: Cfg) -> Cfg {
        match (self, inner) {
            (Cfg::Test, _) | (_, Cfg::Test) => Cfg::Test,
            (Cfg::Sanitize, _) | (_, Cfg::Sanitize) => Cfg::Sanitize,
            (Cfg::Other, _) | (_, Cfg::Other) => Cfg::Other,
            (Cfg::None, Cfg::None) => Cfg::None,
        }
    }
}

/// A parsed source file.
#[derive(Debug, Clone)]
pub struct File {
    pub items: Vec<Item>,
}

/// One item, with the gate from its own attributes.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// 1-based line of the item keyword (`fn`, `mod`, `impl`, …).
    pub line: usize,
    pub cfg: Cfg,
}

/// One `use` import: `path` as `alias` (`alias` is the last segment
/// unless renamed; `glob` marks `use path::*`).
#[derive(Debug, Clone)]
pub struct UseImport {
    pub path: Vec<String>,
    pub alias: String,
    pub glob: bool,
}

#[derive(Debug, Clone)]
pub enum ItemKind {
    Fn(FnItem),
    Mod {
        name: String,
        /// `None` for `mod x;` (out-of-line; the resolver joins the
        /// files), `Some` for an inline `mod x { … }`.
        items: Option<Vec<Item>>,
    },
    Impl {
        /// The self-type's final identifier (generics stripped).
        type_name: String,
        /// `Some` for `impl Trait for Type`.
        trait_name: Option<String>,
        items: Vec<Item>,
    },
    Trait {
        name: String,
        items: Vec<Item>,
    },
    Use {
        imports: Vec<UseImport>,
    },
    /// Everything else (`struct`, `enum`, `const`, `static`, `type`,
    /// `macro_rules!`, …). Initializer expressions are not analyzed —
    /// a deliberate under-approximation (const contexts cannot be on
    /// the runtime hot path).
    Other {
        keyword: String,
        name: Option<String>,
    },
}

/// A function (free, impl method, or trait method).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// `None` for bodiless signatures (trait methods, extern fns).
    pub body: Option<Vec<Expr>>,
    /// Carries `#[test]` (the item-level `cfg` covers `#[cfg(test)]`).
    pub has_test_attr: bool,
}

/// Expression-tree node. `Group` is the generic nesting fallback, so a
/// traversal that matches on the specific variants and recurses into
/// every child sees all interesting sites exactly once.
#[derive(Debug, Clone)]
pub enum Expr {
    /// `path::to::f(args…)` — also `Type::assoc(args…)`.
    Call {
        path: Vec<String>,
        line: usize,
        args: Vec<Expr>,
    },
    /// `.name(args…)`.
    MethodCall {
        name: String,
        line: usize,
        args: Vec<Expr>,
    },
    /// `name!(…)` / `path::name!(…)`; `name` is the final segment.
    MacroCall {
        name: String,
        line: usize,
        args: Vec<Expr>,
    },
    /// `base[index]` — a potential panic site.
    Index { line: usize, children: Vec<Expr> },
    /// `for`/`while`/`loop` body.
    Loop { line: usize, body: Vec<Expr> },
    /// `|…| body` — body is attributed to the enclosing fn by the call
    /// graph (conservative over-approximation).
    Closure { line: usize, body: Vec<Expr> },
    /// A statement run behind a `#[cfg(…)]` attribute.
    Gated { cfg: Cfg, body: Vec<Expr> },
    /// A bare path in expression position (`Ordering::Relaxed`, a fn
    /// passed as a value, an enum variant, …).
    PathRef { path: Vec<String>, line: usize },
    /// Any other nesting: blocks, parenthesized expressions, match
    /// bodies, struct literals, array literals.
    Group { children: Vec<Expr> },
}

impl Expr {
    /// The node's children, for uniform traversal.
    pub fn children(&self) -> &[Expr] {
        match self {
            Expr::Call { args, .. }
            | Expr::MethodCall { args, .. }
            | Expr::MacroCall { args, .. } => args,
            Expr::Index { children, .. } | Expr::Group { children } => children,
            Expr::Loop { body, .. } | Expr::Closure { body, .. } | Expr::Gated { body, .. } => body,
            Expr::PathRef { .. } => &[],
        }
    }
}
