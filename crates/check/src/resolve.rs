//! Module-resolved workspace symbol table.
//!
//! Maps every parsed file into a crate + module path (derived from the
//! file's location, the same convention cargo uses), flattens all
//! functions into an indexed table, and resolves call paths against
//! imports, child modules, impl types, and re-exports. Resolution is
//! deliberately conservative: an ambiguous path resolves to *every*
//! plausible target, and unresolvable paths (std, vendored deps) are
//! treated as external leaves.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Cfg, Expr, File, Item, ItemKind};

/// One function (free, impl method, or trait method) in the workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// Human-readable qualified name, e.g.
    /// `slim_lik::pruning::prune_block` or `slim_linalg::Mat::row`.
    pub qual: String,
    /// Crate ident (underscored), first segment of `module`.
    pub krate: String,
    /// Full module key: `[crate, mod, mod, …]`.
    pub module: Vec<String>,
    /// `Some(type_name)` for impl/trait methods.
    pub self_type: Option<String>,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// The effective cfg gate (item's own, combined with every
    /// enclosing mod/impl gate).
    pub cfg: Cfg,
    /// `#[test]` or inside `#[cfg(test)]` scope.
    pub is_test: bool,
    pub body: Vec<Expr>,
    pub has_body: bool,
}

impl FnDef {
    /// Part of the non-test, non-sanitize build?
    pub fn in_scope(&self) -> bool {
        self.cfg.in_scope() && !self.is_test
    }
}

/// Per-module name tables.
#[derive(Debug, Clone, Default)]
pub struct ModuleInfo {
    /// `use` alias → absolute-ish path (crate ident first, or an
    /// external head like `std`).
    pub imports: BTreeMap<String, Vec<String>>,
    /// `use path::*` glob prefixes.
    pub globs: Vec<Vec<String>>,
    /// Free functions declared here, by name.
    pub fns: BTreeMap<String, Vec<usize>>,
    /// Child module names (inline or out-of-line).
    pub children: BTreeSet<String>,
}

/// The resolved workspace.
#[derive(Debug, Default)]
pub struct Workspace {
    pub fns: Vec<FnDef>,
    pub modules: BTreeMap<Vec<String>, ModuleInfo>,
    /// Every impl/trait method by bare name — the conservative target
    /// set for `.name()` method calls (trait objects, generics).
    pub methods_by_name: BTreeMap<String, Vec<usize>>,
    /// `(TypeName, method)` → defs, for `Type::method(…)` calls.
    pub type_methods: BTreeMap<(String, String), Vec<usize>>,
    /// Known crate idents.
    pub crates: BTreeSet<String>,
}

/// One parsed file handed to the resolver.
pub struct ParsedFile {
    /// Workspace-relative forward-slash path.
    pub path: String,
    pub ast: File,
}

/// Derive `(crate_ident, module_path)` from a workspace-relative path,
/// or `None` for files outside the analyzed set (vendor, tests,
/// benches, examples, fixtures).
pub fn module_of(
    path: &str,
    crate_names: &BTreeMap<String, String>,
) -> Option<(String, Vec<String>)> {
    if path.starts_with("vendor/") {
        return None;
    }
    let (krate, rest) = if let Some(rest) = path.strip_prefix("crates/") {
        let (dir, rest) = rest.split_once('/')?;
        let ident = crate_names
            .get(dir)
            .cloned()
            .unwrap_or_else(|| format!("slim_{}", dir.replace('-', "_")));
        (ident, rest)
    } else if path.starts_with("src/") {
        ("slimcodeml".to_string(), path)
    } else {
        return None;
    };
    let rest = rest.strip_prefix("src/")?;
    if rest.contains("/tests/") || rest.starts_with("tests/") {
        return None;
    }
    let mut mods: Vec<String> = Vec::new();
    let parts: Vec<&str> = rest.split('/').collect();
    for (i, part) in parts.iter().enumerate() {
        let last = i + 1 == parts.len();
        if last {
            match *part {
                "lib.rs" => {}
                "main.rs" => mods.push("__main".to_string()),
                "mod.rs" => {}
                other => {
                    let stem = other.strip_suffix(".rs")?;
                    if parts.get(i.wrapping_sub(1)) == Some(&"bin") {
                        // handled by the "bin" dir arm below
                        mods.push(stem.to_string());
                    } else {
                        mods.push(stem.to_string());
                    }
                }
            }
        } else if *part == "bin" {
            mods.push("__bin".to_string());
        } else {
            mods.push(part.to_string());
        }
    }
    let mut key = vec![krate.clone()];
    key.extend(mods);
    Some((krate, key))
}

/// Build the workspace table from parsed files.
pub fn build(files: &[ParsedFile], crate_names: &BTreeMap<String, String>) -> Workspace {
    let mut ws = Workspace::default();
    for f in files {
        if let Some((krate, _)) = module_of(&f.path, crate_names) {
            ws.crates.insert(krate);
        }
    }
    for f in files {
        let Some((krate, key)) = module_of(&f.path, crate_names) else {
            continue;
        };
        // Register the chain of parent modules so child-module lookup
        // works even when a parent has no file-level items of its own.
        for n in 1..key.len() {
            let parent = key[..n].to_vec();
            let child = key[n].clone();
            ws.modules.entry(parent).or_default().children.insert(child);
        }
        ws.modules.entry(key.clone()).or_default();
        let mut cx = Cx {
            krate: &krate,
            file: &f.path,
            module: key,
        };
        let items = f.ast.items.clone();
        collect_items(&mut ws, &mut cx, &items, Cfg::None, None);
    }
    // Second pass: imports written relative to the declaring module
    // (`use cpv::apply_dense;` next to `mod cpv;`) gain the module
    // prefix now that every child module is known.
    let crates = ws.crates.clone();
    let keys: Vec<Vec<String>> = ws.modules.keys().cloned().collect();
    for key in keys {
        let children = ws.modules[&key].children.clone();
        let Some(info) = ws.modules.get_mut(&key) else {
            continue;
        };
        let fixup = |target: &mut Vec<String>| {
            if let Some(head) = target.first() {
                if !crates.contains(head) && children.contains(head) {
                    let mut p = key.clone();
                    p.append(target);
                    *target = p;
                }
            }
        };
        info.imports.values_mut().for_each(fixup);
        info.globs.iter_mut().for_each(fixup);
    }
    ws
}

struct Cx<'a> {
    krate: &'a str,
    file: &'a str,
    module: Vec<String>,
}

fn collect_items(
    ws: &mut Workspace,
    cx: &mut Cx<'_>,
    items: &[Item],
    outer_cfg: Cfg,
    self_type: Option<&str>,
) {
    for item in items {
        let cfg = outer_cfg.and(item.cfg);
        match &item.kind {
            ItemKind::Fn(f) => {
                let idx = ws.fns.len();
                let qual = match self_type {
                    Some(t) => format!("{}::{}::{}", cx.module.join("::"), t, f.name),
                    None => format!("{}::{}", cx.module.join("::"), f.name),
                };
                ws.fns.push(FnDef {
                    name: f.name.clone(),
                    qual,
                    krate: cx.krate.to_string(),
                    module: cx.module.clone(),
                    self_type: self_type.map(str::to_string),
                    file: cx.file.to_string(),
                    line: f.line,
                    cfg,
                    is_test: f.has_test_attr || cfg == Cfg::Test,
                    body: f.body.clone().unwrap_or_default(),
                    has_body: f.body.is_some(),
                });
                match self_type {
                    Some(t) => {
                        ws.methods_by_name
                            .entry(f.name.clone())
                            .or_default()
                            .push(idx);
                        ws.type_methods
                            .entry((t.to_string(), f.name.clone()))
                            .or_default()
                            .push(idx);
                    }
                    None => {
                        ws.modules
                            .entry(cx.module.clone())
                            .or_default()
                            .fns
                            .entry(f.name.clone())
                            .or_default()
                            .push(idx);
                    }
                }
            }
            ItemKind::Mod { name, items } => {
                ws.modules
                    .entry(cx.module.clone())
                    .or_default()
                    .children
                    .insert(name.clone());
                if let Some(inner) = items {
                    cx.module.push(name.clone());
                    ws.modules.entry(cx.module.clone()).or_default();
                    collect_items(ws, cx, inner, cfg, None);
                    cx.module.pop();
                }
            }
            ItemKind::Impl {
                type_name, items, ..
            } => {
                collect_items(ws, cx, items, cfg, Some(type_name));
            }
            ItemKind::Trait { name, items } => {
                collect_items(ws, cx, items, cfg, Some(name));
            }
            ItemKind::Use { imports } => {
                let module = cx.module.clone();
                for u in imports {
                    let abs = absolutize(&module, &u.path);
                    let info = ws.modules.entry(module.clone()).or_default();
                    if u.glob {
                        info.globs.push(abs);
                    } else {
                        info.imports.insert(u.alias.clone(), abs);
                    }
                }
            }
            ItemKind::Other { .. } => {}
        }
    }
}

/// Expand `crate`/`self`/`super` heads against the importing module.
fn absolutize(module: &[String], path: &[String]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut rest = path;
    match path.first().map(String::as_str) {
        Some("crate") => {
            out.push(module[0].clone());
            rest = &path[1..];
        }
        Some("self") => {
            out.extend_from_slice(module);
            rest = &path[1..];
        }
        Some("super") => {
            let mut depth = module.len();
            while rest.first().map(String::as_str) == Some("super") && depth > 1 {
                depth -= 1;
                rest = &rest[1..];
            }
            out.extend_from_slice(&module[..depth]);
        }
        _ => {}
    }
    out.extend(rest.iter().cloned());
    out
}

impl Workspace {
    /// Resolve a call path written inside `from` to candidate fn
    /// indices. Empty when the target is external (std, vendored).
    pub fn resolve_call(&self, from: &FnDef, path: &[String]) -> Vec<usize> {
        if path.is_empty() || path.iter().any(String::is_empty) {
            return Vec::new();
        }
        if path.len() == 1 {
            return self.resolve_bare(&from.module, &path[0]);
        }
        let head = path[0].as_str();
        // `crate::` / `self::` / `super::` relative paths.
        if matches!(head, "crate" | "self" | "super") {
            return self.resolve_abs(&absolutize(&from.module, path), 0);
        }
        // `Self::assoc(…)` in an impl.
        if head == "Self" {
            if let Some(t) = &from.self_type {
                let mut p = vec![t.clone()];
                p.extend_from_slice(&path[1..]);
                return self.resolve_type_path(&p);
            }
            return Vec::new();
        }
        // Known crate ident.
        if self.crates.contains(head) {
            return self.resolve_abs(path, 0);
        }
        // Import alias expansion (`use slim_expm::cpv; cpv::apply(…)`).
        if let Some(info) = self.modules.get(&from.module) {
            if let Some(target) = info.imports.get(head) {
                let mut p = target.clone();
                p.extend_from_slice(&path[1..]);
                return self.resolve_abs(&p, 0);
            }
        }
        // Child module of the current module.
        if self
            .modules
            .get(&from.module)
            .is_some_and(|m| m.children.contains(head))
        {
            let mut p = from.module.clone();
            p.extend_from_slice(path);
            return self.resolve_abs(&p, 0);
        }
        // `Type::method(…)` on a workspace type (imported or local).
        let hits = self.resolve_type_path(path);
        if !hits.is_empty() {
            return hits;
        }
        // Sibling module path without `self::` (`pruning::prune(…)`
        // after `mod pruning;` in a parent we are not in) — try the
        // crate root as a last resort.
        let mut p = vec![from.krate.clone()];
        p.extend_from_slice(path);
        self.resolve_abs(&p, 0)
    }

    /// Conservative method-call targets: every workspace method with
    /// this name (trait objects and generic receivers cannot be
    /// narrowed without type inference).
    pub fn resolve_method(&self, name: &str) -> &[usize] {
        self.methods_by_name
            .get(name)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn resolve_bare(&self, module: &[String], name: &str) -> Vec<usize> {
        let Some(info) = self.modules.get(module) else {
            return Vec::new();
        };
        if let Some(defs) = info.fns.get(name) {
            return defs.clone();
        }
        if let Some(target) = info.imports.get(name) {
            return self.resolve_abs(target, 0);
        }
        let mut out = Vec::new();
        for glob in &info.globs {
            let mut p = glob.clone();
            p.push(name.to_string());
            out.extend(self.resolve_abs(&p, 0));
        }
        out
    }

    /// `Type::method` (2 segments) against the workspace type table;
    /// longer paths try `module::Type::method`.
    fn resolve_type_path(&self, path: &[String]) -> Vec<usize> {
        let n = path.len();
        if n < 2 {
            return Vec::new();
        }
        let key = (path[n - 2].clone(), path[n - 1].clone());
        self.type_methods.get(&key).cloned().unwrap_or_default()
    }

    /// Resolve an absolute-ish path (crate ident first). `depth` bounds
    /// re-export chasing.
    fn resolve_abs(&self, path: &[String], depth: usize) -> Vec<usize> {
        if depth > 4 || path.len() < 2 {
            return Vec::new();
        }
        let n = path.len();
        // Free fn in module path[..n-1].
        if let Some(info) = self.modules.get(&path[..n - 1]) {
            if let Some(defs) = info.fns.get(&path[n - 1]) {
                return defs.clone();
            }
            // Re-export: the final segment is an alias in that module
            // (`pub use`), or reachable through one of its globs.
            if let Some(target) = info.imports.get(&path[n - 1]) {
                return self.resolve_abs(target, depth + 1);
            }
            for glob in &info.globs {
                let mut p = glob.clone();
                p.push(path[n - 1].clone());
                let hits = self.resolve_abs(&p, depth + 1);
                if !hits.is_empty() {
                    return hits;
                }
            }
        }
        // `module::Type::method`: the type's defining module is not
        // tracked, so fall back to the global type table.
        let hits = self.resolve_type_path(path);
        if !hits.is_empty() {
            // Only when the path plausibly points into the workspace.
            if self.crates.contains(&path[0]) || self.modules.contains_key(&path[..1]) {
                return hits;
            }
        }
        // Re-export of a whole module one level up
        // (`slim_expm::SymTransition::apply` where SymTransition is
        // re-exported at the crate root).
        if n >= 3 {
            if let Some(info) = self.modules.get(&path[..n - 2]) {
                if let Some(target) = info.imports.get(&path[n - 2]) {
                    let mut p = target.clone();
                    p.push(path[n - 1].clone());
                    return self.resolve_abs(&p, depth + 1);
                }
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(p, s)| ParsedFile {
                path: p.to_string(),
                ast: parse_file(s).expect("parse"),
            })
            .collect();
        build(&parsed, &BTreeMap::new())
    }

    fn find<'w>(ws: &'w Workspace, qual: &str) -> &'w FnDef {
        ws.fns.iter().find(|f| f.qual == qual).unwrap_or_else(|| {
            panic!(
                "no fn {qual}; have {:?}",
                ws.fns.iter().map(|f| &f.qual).collect::<Vec<_>>()
            )
        })
    }

    #[test]
    fn modules_derive_from_paths() {
        let w = ws(&[
            ("crates/lik/src/lib.rs", "pub fn top() {}"),
            ("crates/lik/src/pruning.rs", "pub fn prune_block() {}"),
            ("crates/linalg/src/simd/mod.rs", "pub fn dot_with() {}"),
        ]);
        assert_eq!(find(&w, "slim_lik::top").module, vec!["slim_lik"]);
        assert_eq!(
            find(&w, "slim_lik::pruning::prune_block").module,
            vec!["slim_lik", "pruning"]
        );
        assert_eq!(
            find(&w, "slim_linalg::simd::dot_with").module,
            vec!["slim_linalg", "simd"]
        );
    }

    #[test]
    fn bare_calls_resolve_locally_and_through_imports() {
        let w = ws(&[
            (
                "crates/lik/src/pruning.rs",
                "use crate::par::evaluate;\npub fn go() { helper(); evaluate(); }\nfn helper() {}",
            ),
            ("crates/lik/src/par.rs", "pub fn evaluate() {}"),
        ]);
        let go = find(&w, "slim_lik::pruning::go");
        let helper = w.resolve_call(go, &["helper".into()]);
        assert_eq!(helper.len(), 1);
        assert_eq!(w.fns[helper[0]].qual, "slim_lik::pruning::helper");
        let eval = w.resolve_call(go, &["evaluate".into()]);
        assert_eq!(eval.len(), 1);
        assert_eq!(w.fns[eval[0]].qual, "slim_lik::par::evaluate");
    }

    #[test]
    fn cross_crate_and_type_paths_resolve() {
        let w = ws(&[
            (
                "crates/lik/src/lib.rs",
                "pub fn go() { slim_expm::cpv::apply(); SymTransition::apply2(); }",
            ),
            (
                "crates/expm/src/cpv.rs",
                "pub fn apply() {}\npub struct SymTransition;\nimpl SymTransition { pub fn apply2() {} }",
            ),
        ]);
        let go = find(&w, "slim_lik::go");
        assert_eq!(
            w.resolve_call(go, &["slim_expm".into(), "cpv".into(), "apply".into()])
                .len(),
            1
        );
        assert_eq!(
            w.resolve_call(go, &["SymTransition".into(), "apply2".into()])
                .len(),
            1
        );
    }

    #[test]
    fn reexports_chase_through_pub_use() {
        let w = ws(&[
            (
                "crates/expm/src/lib.rs",
                "pub mod cpv;\npub use cpv::apply_dense;",
            ),
            ("crates/expm/src/cpv.rs", "pub fn apply_dense() {}"),
            (
                "crates/lik/src/lib.rs",
                "use slim_expm::apply_dense;\npub fn go() { apply_dense(); }",
            ),
        ]);
        let go = find(&w, "slim_lik::go");
        let hits = w.resolve_call(go, &["apply_dense".into()]);
        assert_eq!(hits.len(), 1);
        assert_eq!(w.fns[hits[0]].qual, "slim_expm::cpv::apply_dense");
    }

    #[test]
    fn method_calls_overapproximate_by_name() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "pub struct X;\nimpl X { pub fn step(&self) {} }",
            ),
            (
                "crates/b/src/lib.rs",
                "pub struct Y;\nimpl Y { pub fn step(&self) {} }",
            ),
        ]);
        assert_eq!(w.resolve_method("step").len(), 2);
    }

    #[test]
    fn test_gated_fns_are_marked() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "#[cfg(test)]\nmod tests { pub fn t() {} }\n#[test]\nfn u() {}\npub fn live() {}",
        )]);
        assert!(find(&w, "slim_a::tests::t").is_test);
        assert!(find(&w, "slim_a::u").is_test);
        assert!(!find(&w, "slim_a::live").is_test);
    }
}
