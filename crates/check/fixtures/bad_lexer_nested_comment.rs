//@ path: crates/model/src/nested.rs
// Lexer regression: block comments nest in Rust. A depth-unaware lexer
// resurfaces at the FIRST `*/` and then "sees" the tail of the outer
// comment as code, firing phantom diagnostics (or missing real ones by
// desynced line numbers).

/* outer /* inner mentions y.unwrap() */ still inside the outer comment,
   spanning lines, and mentions SystemTime::now() too */
pub fn real(x: Option<u32>) -> u32 {
    x.unwrap() //~ rob-unwrap
}

/* a /* doubly /* nested */ comment */ with an unsafe block inside */
pub fn after_deep_nesting(x: Option<u32>) -> u32 {
    x.unwrap() //~ rob-unwrap
}
