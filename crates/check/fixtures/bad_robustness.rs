//@ path: crates/lik/src/fixture.rs
// Known-bad robustness snippets. A tilde marker naming a rule flags the
// line's expected diagnostic; the fixture harness cross-checks markers
// against the scanner's output in both directions.

fn lookup(map: &std::collections::BTreeMap<u32, f64>, k: u32) -> f64 {
    *map.get(&k).unwrap() //~ rob-unwrap
}

fn demand(opt: Option<f64>) -> f64 {
    opt.expect("value must be present") //~ rob-unwrap
}

fn bail() {
    panic!("cannot continue"); //~ rob-unwrap
}

fn later() {
    todo!() //~ rob-unwrap
}

fn reinterpret(bits: u64) -> f64 {
    unsafe { std::mem::transmute(bits) } //~ rob-safety
}

// SAFETY: same-width plain-old-data transmute, no invalid bit patterns.
fn reinterpret_documented(bits: u64) -> f64 {
    unsafe { std::mem::transmute(bits) }
}

fn waived(opt: Option<f64>) -> f64 {
    // check: allow(rob-unwrap) fixture demonstrates a waiver with a reason
    opt.unwrap()
}

fn waived_inline(opt: Option<f64>) -> f64 {
    opt.unwrap() // check: allow(rob-unwrap) trailing-comment waiver form
}

fn fallback(opt: Option<bool>) -> bool {
    opt.unwrap_or(false) // unwrap_or is fine: no panic path
}

#[cfg(test)]
mod tests {
    fn in_tests_anything_goes() {
        None::<f64>.unwrap();
        panic!("test-only");
    }
}
