//@ path: crates/linalg/src/fixture.rs
// Known-bad float-accumulation snippets for the lik/linalg scope.

fn naive_total(xs: &[f64]) -> f64 {
    xs.iter().sum() //~ det-float-accum
}

fn naive_loop(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += x; //~ det-float-accum
    }
    acc
}

fn turbofish(xs: &[f64]) -> f64 {
    xs.iter().copied().sum::<f64>() //~ det-float-accum
}

fn product_too(xs: &[f64]) -> f64 {
    xs.iter().product() //~ det-float-accum
}

fn integer_counters_are_fine(xs: &[f64]) -> usize {
    let mut n = 0;
    for x in xs {
        if *x > 0.0 {
            n += 1;
        }
    }
    n
}

fn waived_ordered(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        // check: allow(det-float-accum) fixed-order loop, order is part of the contract
        acc += x;
    }
    acc
}
