//@ path: crates/batch/src/fixture.rs
// Known-bad determinism snippets for the output-path rules.

use std::collections::HashMap; //~ det-hash-iter

fn aggregate(records: &[(String, f64)]) -> HashMap<String, f64> { //~ det-hash-iter
    let mut out = HashMap::new(); //~ det-hash-iter
    for (k, v) in records {
        out.insert(k.clone(), *v);
    }
    out
}

fn compare(total: f64) -> bool {
    total == 0.0 //~ det-float-cmp
}

fn compare_bits(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() // bitwise comparison is the sanctioned form
}

fn threshold(x: f64) -> bool {
    x <= 1e-100 // ordered comparisons are fine
}

// check: allow(det-hash-iter) lookup-only set, never iterated for output
fn waived_lookup(done: &std::collections::HashSet<u32>, k: u32) -> bool {
    done.contains(&k)
}
