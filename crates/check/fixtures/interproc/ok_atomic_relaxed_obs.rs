//@ path: crates/obs/src/counters_fixture.rs
// OK: Relaxed is the blessed ordering for the metrics counter crates
// (obs, trace) — monotonic counters carry no synchronization role.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
