//@ path: crates/model/src/stale.rs
// Bad: a waiver that suppresses nothing. Under --stale-waivers it is
// itself a finding — dead waivers hide real regressions when the code
// under them changes.

// check: allow(rob-unwrap) nothing here unwraps any more //~ stale-waiver
pub fn tidy(x: u32) -> u32 {
    x + 1
}
