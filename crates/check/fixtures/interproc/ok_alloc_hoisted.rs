//@ path: crates/model/src/alloc_ok.rs
// OK: the allocation is hoisted out of the loop; the loop body only
// writes through pre-sized storage.

// check: hot per-site loop
pub fn kernel(n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n];
    for v in out.iter_mut() {
        *v = 1.0;
    }
    out
}
