//@ path: crates/model/src/hot_ok.rs
// OK: the helper's indexing is covered by a fn-level waiver in the
// comment block above its declaration, and the waiver is counted as
// used (no stale-waiver finding under --stale-waivers).

// check: hot kernel entry
pub fn kernel(xs: &[f64]) -> f64 {
    pick(xs)
}

// check: allow(panic-free-hot-path) index bounded by caller contract, xs never empty
fn pick(xs: &[f64]) -> f64 {
    xs[0]
}
