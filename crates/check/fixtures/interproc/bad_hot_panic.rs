//@ path: crates/model/src/hot_panic.rs
// Bad: a hot entry reaches panic sites through a helper. The line rule
// (rob-unwrap) and the interprocedural rule both fire on the unwrap;
// the assert and the indexing are interprocedural-only.

// check: hot branch-site inner loop
pub fn kernel(xs: &[f64], sel: Option<usize>) -> f64 {
    combine(xs, sel)
}

fn combine(xs: &[f64], sel: Option<usize>) -> f64 {
    let i = sel.unwrap(); //~ rob-unwrap //~ panic-free-hot-path
    assert!(i < xs.len()); //~ panic-free-hot-path
    xs[i] //~ panic-free-hot-path
}
