//@ path: crates/batch/src/flag_ok.rs
// OK: a Release store paired with an Acquire load in the same file is
// the blessed hand-off shape — no findings.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn set(f: &AtomicBool) {
    f.store(true, Ordering::Release);
}

pub fn get(f: &AtomicBool) -> bool {
    f.load(Ordering::Acquire)
}
