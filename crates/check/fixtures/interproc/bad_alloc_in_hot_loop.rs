//@ path: crates/model/src/alloc_hot.rs
// Bad: allocation inside the loop of a hot-path fn. The Vec::new
// before the loop is fine; the push and format! inside it are not.

// check: hot per-site loop
pub fn kernel(n: usize) -> usize {
    let mut v = Vec::new();
    for i in 0..n {
        v.push(i); //~ alloc-in-hot-loop
        let label = format!("site {i}"); //~ alloc-in-hot-loop
        let _ = label;
    }
    v.len()
}
