//@ path: crates/batch/src/atomics.rs
// Bad: SeqCst without a waiver, Relaxed outside the obs/trace counter
// crates, and a Release store with no Acquire load anywhere in the
// file (a hand-off that synchronizes nothing).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst); //~ atomic-ordering
}

pub fn count(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed); //~ atomic-ordering
}

pub fn handoff(flag: &AtomicBool) {
    flag.store(true, Ordering::Release); //~ atomic-ordering
}
