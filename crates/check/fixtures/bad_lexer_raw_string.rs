//@ path: crates/model/src/rawstr.rs
// Lexer regression: raw strings must be blanked without desyncing line
// tracking. A historical bug consumed the rest of the line after `r#"`,
// so multi-line raw strings shifted every diagnostic below them.

pub fn doc() -> &'static str {
    r#"this mentions x.unwrap() and // a fake comment
and spans lines with "plain quotes" and a stray r" opener
"#
}

pub fn nested_hashes() -> &'static str {
    r##"an inner "# does not close this literal: y.unwrap()"##
}

pub fn real(x: Option<u32>) -> u32 {
    x.unwrap() //~ rob-unwrap
}
