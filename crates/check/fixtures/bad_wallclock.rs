//@ path: crates/core/src/fixture.rs
// Known-bad wall-clock snippets for det-wallclock.

use std::time::{Instant, SystemTime}; //~ det-wallclock

fn stamp() -> u64 {
    let t = Instant::now(); //~ det-wallclock
    t.elapsed().as_micros() as u64
}

fn epoch() -> u64 {
    let now = SystemTime::now(); //~ det-wallclock
    now.duration_since(SystemTime::UNIX_EPOCH) //~ det-wallclock
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn waived_timing() -> u64 {
    // check: allow(det-wallclock) feeds the obs timing histogram only
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
